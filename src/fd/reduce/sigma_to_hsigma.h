// Theorem 1: building HΣ from a Σ detector in a system with unique
// identifiers —
//   Figure 1 (SigmaToHSigmaLocal): with initial membership knowledge,
//     without any communication;
//   Figure 2 (SigmaToHSigmaBcast): without membership knowledge, learning
//     it through IDENT broadcasts.
//
// In both, the quorum set read from Σ labels itself: h_quora accumulates
// pairs (q, q), and h_labels is every identifier set containing id(p) drawn
// from the (known or learned) membership. The label universe is exponential
// in the number of distinct identifiers — that is the paper's construction,
// not an implementation shortcut — so these transformers are only meant for
// small systems (they refuse to expand beyond kMaxMembershipForLabels ids).
#pragma once

#include <set>

#include "common/trajectory.h"
#include "common/types.h"
#include "fd/interfaces.h"
#include "fd/output_hooks.h"
#include "obs/metrics.h"
#include "sim/process.h"

namespace hds {

inline constexpr std::size_t kMaxMembershipForLabels = 16;

struct SigIdentMsg {
  Id id;
};

// Figure 1 — membership known at start; no communication (a local timer
// merely paces the "repeat forever" sampling loop).
class SigmaToHSigmaLocal final : public Process, public HSigmaHandle {
 public:
  SigmaToHSigmaLocal(const SigmaHandle& sigma, Id self_id, std::set<Id> membership,
                     SimTime period = 3);

  void on_start(Env& env) override;
  void on_timer(Env& env, TimerId id) override;

  [[nodiscard]] HSigmaSnapshot snapshot() const override { return state_; }
  [[nodiscard]] const Trajectory<HSigmaSnapshot>& trace() const { return trace_; }

  // Fires whenever a sample adds a quorum. Null detaches.
  void set_output_listener(FdOutputListener* l) { listener_ = l; }

 private:
  void sample(SimTime now);

  const SigmaHandle& sigma_;
  SimTime period_;
  HSigmaSnapshot state_;
  Trajectory<HSigmaSnapshot> trace_;
  FdOutputListener* listener_ = nullptr;
};

// Figure 2 — membership unknown; IDENT(id(p)) is broadcast forever and
// h_labels follows the learned membership.
class SigmaToHSigmaBcast final : public Process, public HSigmaHandle {
 public:
  static constexpr const char* kMsgType = "SIG_IDENT";

  explicit SigmaToHSigmaBcast(const SigmaHandle& sigma, SimTime period = 3);

  void on_start(Env& env) override;
  void on_message(Env& env, const Message& m) override;
  void on_timer(Env& env, TimerId id) override;

  [[nodiscard]] HSigmaSnapshot snapshot() const override { return state_; }
  [[nodiscard]] const Trajectory<HSigmaSnapshot>& trace() const { return trace_; }
  [[nodiscard]] const std::set<Id>& mship() const { return mship_; }

  // Per-reduction overhead: SIG_IDENT broadcasts and their approximate wire
  // size, under reduction="sigma_to_hsigma" (merged into `labels`).
  void attach_metrics(obs::MetricsRegistry* reg, obs::Labels labels = {});

  // Fires whenever a sample adds a quorum or new membership grows h_labels.
  // Null detaches.
  void set_output_listener(FdOutputListener* l) { listener_ = l; }

 private:
  void sample(SimTime now);
  void beat(Env& env);

  const SigmaHandle& sigma_;
  SimTime period_;
  std::set<Id> mship_;
  HSigmaSnapshot state_;
  Trajectory<HSigmaSnapshot> trace_;
  FdOutputListener* listener_ = nullptr;
  obs::Counter* m_msgs_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
};

// Shared helper: all subsets s of `membership` with self in s, as labels.
std::set<Label> labels_of_membership(const std::set<Id>& membership, Id self);

}  // namespace hds
