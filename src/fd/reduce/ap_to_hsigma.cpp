#include "fd/reduce/ap_to_hsigma.h"

namespace hds {

HSigmaSnapshot ApToHSigma::snapshot() const {
  const std::size_t y = src_->anap();
  if (y != std::numeric_limits<std::size_t>::max()) {
    const Label x = Label::of_count(y);
    state_.labels.insert(x);
    state_.quora.emplace(x, Multiset<Id>::with_copies(kBottomId, y));
  }
  return state_;
}

}  // namespace hds
