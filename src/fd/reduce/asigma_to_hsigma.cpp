#include "fd/reduce/asigma_to_hsigma.h"

namespace hds {

HSigmaSnapshot ASigmaToHSigma::snapshot() const {
  for (const ASigmaPair& pair : src_->a_sigma()) {
    const Label x = Label::of_asigma(pair.label);
    state_.labels.insert(x);
    state_.quora[x] = Multiset<Id>::with_copies(kBottomId, pair.count);
  }
  return state_;
}

}  // namespace hds
