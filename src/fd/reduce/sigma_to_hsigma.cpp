#include "fd/reduce/sigma_to_hsigma.h"

#include <stdexcept>
#include <vector>

namespace hds {

std::set<Label> labels_of_membership(const std::set<Id>& membership, Id self) {
  // {s : s <= membership and self in s} — empty while self is unknown (in
  // Fig. 2, before the process has received its own IDENT).
  if (!membership.contains(self)) return {};
  if (membership.size() > kMaxMembershipForLabels) {
    throw std::invalid_argument("labels_of_membership: label universe too large");
  }
  std::vector<Id> others;
  for (Id i : membership) {
    if (i != self) others.push_back(i);
  }
  std::set<Label> out;
  const std::size_t k = others.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << k); ++mask) {
    std::set<Id> s{self};
    for (std::size_t b = 0; b < k; ++b) {
      if (mask & (std::size_t{1} << b)) s.insert(others[b]);
    }
    out.insert(Label::of_set(s));
  }
  return out;
}

namespace {

// Lines 5-6 of Figs. 1-2: h_quora <- h_quora U {(q, q)} with q = D.trusted.
// True when the quorum was not already stored.
bool fold_quorum(HSigmaSnapshot& state, const Multiset<Id>& q) {
  if (q.empty()) return false;  // Σ produced no output yet
  std::set<Id> support;
  for (const auto& [v, c] : q.counts()) {
    (void)c;
    support.insert(v);
  }
  return state.quora.emplace(Label::of_set(support), q).second;
}

}  // namespace

SigmaToHSigmaLocal::SigmaToHSigmaLocal(const SigmaHandle& sigma, Id self_id,
                                       std::set<Id> membership, SimTime period)
    : sigma_(sigma), period_(period) {
  state_.labels = labels_of_membership(membership, self_id);
}

void SigmaToHSigmaLocal::on_start(Env& env) {
  sample(env.local_now());
  env.set_timer(period_);
}

void SigmaToHSigmaLocal::on_timer(Env& env, TimerId) {
  sample(env.local_now());
  env.set_timer(period_);
}

void SigmaToHSigmaLocal::sample(SimTime now) {
  const bool grew = fold_quorum(state_, sigma_.trusted());
  trace_.record(now, state_);
  if (grew && listener_ != nullptr) listener_->on_hsigma_change(now, state_);
}

SigmaToHSigmaBcast::SigmaToHSigmaBcast(const SigmaHandle& sigma, SimTime period)
    : sigma_(sigma), period_(period) {}

void SigmaToHSigmaBcast::attach_metrics(obs::MetricsRegistry* reg, obs::Labels labels) {
  if (reg == nullptr) {
    m_msgs_ = nullptr;
    m_bytes_ = nullptr;
    return;
  }
  labels.emplace("reduction", "sigma_to_hsigma");
  m_msgs_ = &reg->counter("reduce_msgs_total", labels);
  m_bytes_ = &reg->counter("reduce_bytes_total", labels);
}

void SigmaToHSigmaBcast::beat(Env& env) {
  env.broadcast(make_message(kMsgType, SigIdentMsg{env.self_id()}));
  obs::inc(m_msgs_);
  obs::inc(m_bytes_, sizeof(Id));
}

void SigmaToHSigmaBcast::on_start(Env& env) {
  beat(env);
  sample(env.local_now());
  env.set_timer(period_);
}

void SigmaToHSigmaBcast::on_timer(Env& env, TimerId) {
  beat(env);
  sample(env.local_now());
  env.set_timer(period_);
}

void SigmaToHSigmaBcast::on_message(Env& env, const Message& m) {
  if (m.type != kMsgType) return;
  const auto* body = m.as<SigIdentMsg>();
  if (body == nullptr) return;
  // Lines 14-16: learn the sender and rebuild h_labels over the larger
  // membership (monotone: supersets only add labels).
  if (mship_.insert(body->id).second) {
    state_.labels = labels_of_membership(mship_, env.self_id());
    trace_.record(env.local_now(), state_);
    if (listener_ != nullptr) listener_->on_hsigma_change(env.local_now(), state_);
  }
}

void SigmaToHSigmaBcast::sample(SimTime now) {
  const bool grew = fold_quorum(state_, sigma_.trusted());
  trace_.record(now, state_);
  if (grew && listener_ != nullptr) listener_->on_hsigma_change(now, state_);
}

}  // namespace hds
