// The unique-identifier corner of the paper's Figure 5: "when all
// identifiers are different, the class HΩ is equivalent to Ω" (Section 3.2)
// and ◇HP̄ degenerates to ◇P̄. All four directions are communication-free
// adapters; they are only sound when the underlying system has unique
// identifiers (a multiset whose multiplicities are all 1).
#pragma once

#include "common/multiset.h"
#include "common/types.h"
#include "fd/interfaces.h"

namespace hds {

// HΩ → Ω: forget the multiplicity (which is 1 under unique ids).
class HOmegaToOmega final : public OmegaHandle {
 public:
  explicit HOmegaToOmega(const HOmegaHandle& src) : src_(&src) {}
  [[nodiscard]] Id leader() const override { return src_->h_omega().leader; }

 private:
  const HOmegaHandle* src_;
};

// Ω → HΩ: a unique leader has multiplicity 1.
class OmegaToHOmega final : public HOmegaHandle {
 public:
  explicit OmegaToHOmega(const OmegaHandle& src) : src_(&src) {}
  [[nodiscard]] HOmegaOut h_omega() const override { return HOmegaOut{src_->leader(), 1}; }

 private:
  const OmegaHandle* src_;
};

// ◇HP̄ → ◇P̄: the multiset's support is the set (all multiplicities 1).
class OhpToOPbar final : public OPbarHandle {
 public:
  explicit OhpToOPbar(const OHPHandle& src) : src_(&src) {}
  [[nodiscard]] std::set<Id> trusted_set() const override {
    const Multiset<Id> trusted = src_->h_trusted();
    std::set<Id> out;
    for (const auto& [i, c] : trusted.counts()) {
      (void)c;
      out.insert(i);
    }
    return out;
  }

 private:
  const OHPHandle* src_;
};

// ◇P̄ → ◇HP̄: each unique identifier appears once.
class OPbarToOhp final : public OHPHandle {
 public:
  explicit OPbarToOhp(const OPbarHandle& src) : src_(&src) {}
  [[nodiscard]] Multiset<Id> h_trusted() const override {
    const auto s = src_->trusted_set();
    return Multiset<Id>(s.begin(), s.end());
  }

 private:
  const OPbarHandle* src_;
};

}  // namespace hds
