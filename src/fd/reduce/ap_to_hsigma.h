// Lemma 3: HΣ from AP in an anonymous asynchronous system, without
// communication. Each observed value y of anap mints label bottom^y, which
// joins h_labels, and the pair (bottom^y, bottom^y) joins h_quora. Safety
// follows from AP's over-approximation: quora for y >= y' are nested.
#pragma once

#include <limits>

#include "common/multiset.h"
#include "common/types.h"
#include "fd/interfaces.h"

namespace hds {

class ApToHSigma final : public HSigmaHandle {
 public:
  explicit ApToHSigma(const APHandle& src) : src_(&src) {}

  [[nodiscard]] HSigmaSnapshot snapshot() const override;

 private:
  const APHandle* src_;
  mutable HSigmaSnapshot state_;  // labels/quora accumulate per observation
};

}  // namespace hds
