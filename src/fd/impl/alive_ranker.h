// Figure 3: implementation of class S (Definition 1) in AS[...] — an
// asynchronous system with unique identifiers and unknown membership.
//
// Every process repeatedly broadcasts ALIVE(id(p)); on reception of
// ALIVE(i) the identifier i is moved to (or inserted at) the front of the
// `alive` list. Faulty processes eventually stop sending, so their
// identifiers sink below every correct identifier: eventually the correct
// processes permanently occupy the prefix (rank <= |Correct|).
#pragma once

#include <vector>

#include "common/trajectory.h"
#include "common/types.h"
#include "fd/interfaces.h"
#include "sim/process.h"

namespace hds {

struct AliveMsg {
  Id id;
  friend bool operator==(const AliveMsg&, const AliveMsg&) = default;
};

class AliveRanker final : public Process, public RankerHandle {
 public:
  static constexpr const char* kMsgType = "ALIVE";

  explicit AliveRanker(SimTime resend_period = 5);

  // RankerHandle.
  [[nodiscard]] std::vector<Id> alive_list() const override { return alive_; }

  [[nodiscard]] const Trajectory<std::vector<Id>>& trace() const { return trace_; }

  // Process.
  void on_start(Env& env) override;
  void on_message(Env& env, const Message& m) override;
  void on_timer(Env& env, TimerId id) override;

 private:
  SimTime period_;
  std::vector<Id> alive_;  // front = rank 1
  Trajectory<std::vector<Id>> trace_;
};

}  // namespace hds
