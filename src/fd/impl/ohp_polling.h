// Figure 6: implementation of ◇HP̄ in HPS[...] — homonymous processes,
// partially synchronous, eventually timely links, unknown membership —
// together with the Corollary 2 extraction of HΩ (leader = smallest
// identifier in h_trusted, with its multiplicity).
//
// Polling rounds: at round r the process broadcasts POLLING(r, id(p)),
// waits timeout_p, then sets h_trusted to one identifier instance per
// P_REPLY(r', r'', id(p), id(q)) received whose round range covers r.
// Replies are broadcast (not unicast) so homonymous pollers share them, and
// each process answers a given poller identifier at most once per round
// range (latest_r bookkeeping), which is what makes the per-round instance
// count equal the number of alive processes. Receiving a stale reply
// (range starting before the current round) grows the timeout, which is the
// adaptation that eventually absorbs the unknown post-GST latency bound.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "common/multiset.h"
#include "common/trajectory.h"
#include "common/types.h"
#include "fd/interfaces.h"
#include "fd/output_hooks.h"
#include "obs/metrics.h"
#include "sim/process.h"

namespace hds {

struct PollingMsg {
  Round r;
  Id id;
  friend bool operator==(const PollingMsg&, const PollingMsg&) = default;
};

struct PollReplyMsg {
  Round lo;     // first round this reply covers
  Round hi;     // last round this reply covers (the poll's round)
  Id to_id;     // the poller identifier this reply answers
  Id from_id;   // id(q) of the replier
  friend bool operator==(const PollReplyMsg&, const PollReplyMsg&) = default;
};

class OHPPolling final : public Process, public OHPHandle, public HOmegaHandle {
 public:
  static constexpr const char* kPollType = "POLLING";
  static constexpr const char* kReplyType = "P_REPLY";

  struct Options {
    SimTime initial_timeout = 1;
    // Ablation switch (not in the paper's algorithm, whose lines 33-34 are
    // the adaptation): freeze the timeout at its initial value. Used by the
    // ablation benchmark to show that without adaptation the detector never
    // stabilizes once the (unknown) delta exceeds the timeout.
    bool adaptive_timeout = true;
  };

  OHPPolling() : OHPPolling(Options{}) {}
  explicit OHPPolling(Options opts) : timeout_(opts.initial_timeout), opts_(opts) {}

  // OHPHandle: current h_trusted multiset.
  [[nodiscard]] Multiset<Id> h_trusted() const override { return h_trusted_; }

  // HOmegaHandle (Corollary 2). Before the first non-empty poll result the
  // process names itself leader with multiplicity 1 — any fixed fallback
  // works, as HΩ constrains only the eventual output.
  [[nodiscard]] HOmegaOut h_omega() const override { return h_omega_; }

  [[nodiscard]] Round round() const { return r_; }
  [[nodiscard]] SimTime timeout() const { return timeout_; }

  [[nodiscard]] const Trajectory<Multiset<Id>>& trusted_trace() const { return trusted_trace_; }
  [[nodiscard]] const Trajectory<HOmegaOut>& homega_trace() const { return homega_trace_; }
  [[nodiscard]] const Trajectory<SimTime>& timeout_trace() const { return timeout_trace_; }

  // Registers this detector's instruments: suspicion churn, leader changes,
  // the replier-quorum size distribution, timeout adaptations, and the
  // instant of the last output change (time-to-stabilization once the run is
  // over). Call before the system starts; null detaches.
  void attach_metrics(obs::MetricsRegistry* reg, const obs::Labels& labels = {});

  // Fires at every real h_trusted / h_omega change (the same sites the
  // change counters use). Call before the system starts; null detaches.
  void set_output_listener(FdOutputListener* l) { listener_ = l; }

  // Process.
  void on_start(Env& env) override;
  void on_message(Env& env, const Message& m) override;
  void on_timer(Env& env, TimerId id) override;

 private:
  struct StoredReply {
    Round lo;
    Round hi;
    Id from_id;
  };

  void begin_round(Env& env);
  void finish_round(Env& env);

  Round r_ = 1;
  SimTime timeout_ = 1;
  Options opts_;
  TimerId poll_timer_ = 0;
  std::set<Id> mship_;                // poller identifiers seen
  std::map<Id, Round> latest_r_;      // latest poll round answered per identifier
  std::vector<StoredReply> replies_;  // replies addressed to our identifier
  Multiset<Id> h_trusted_;
  HOmegaOut h_omega_;
  bool started_ = false;

  Trajectory<Multiset<Id>> trusted_trace_;
  Trajectory<HOmegaOut> homega_trace_;
  Trajectory<SimTime> timeout_trace_;

  FdOutputListener* listener_ = nullptr;
  obs::Counter* m_suspicion_changes_ = nullptr;
  obs::Counter* m_leader_changes_ = nullptr;
  obs::Counter* m_timeout_adaptations_ = nullptr;
  obs::Histogram* m_quorum_size_ = nullptr;
  obs::Gauge* m_last_change_at_ = nullptr;
};

}  // namespace hds
