#include "fd/impl/alive_ranker.h"

#include <algorithm>

namespace hds {

AliveRanker::AliveRanker(SimTime resend_period) : period_(resend_period) {}

void AliveRanker::on_start(Env& env) {
  env.broadcast(make_message(kMsgType, AliveMsg{env.self_id()}));
  env.set_timer(period_);
}

void AliveRanker::on_timer(Env& env, TimerId) {
  env.broadcast(make_message(kMsgType, AliveMsg{env.self_id()}));
  env.set_timer(period_);
}

void AliveRanker::on_message(Env& env, const Message& m) {
  if (m.type != kMsgType) return;
  const auto* body = m.as<AliveMsg>();
  if (body == nullptr) return;
  auto it = std::find(alive_.begin(), alive_.end(), body->id);
  if (it != alive_.end()) alive_.erase(it);
  alive_.insert(alive_.begin(), body->id);
  trace_.record(env.local_now(), alive_);
}

}  // namespace hds
