// HΩ by sequence-numbered heartbeats — an extension beyond the paper.
//
// Fig. 6 implements ◇HP̄ (and hence HΩ) with a polling/reply scheme costing
// O(n²) messages per round (every poll answered by everybody). If only HΩ
// is needed, a cheaper scheme works: every process broadcasts HB(id, seq)
// each period. Homonyms sharing identifier x all emit (x, s) for the same
// s (their periods are uniform), so the number of (x, s) copies received
// IS the number of alive processes named x at sequence s. The leader is the
// smallest identifier heard recently; its multiplicity is the copy count at
// the newest *settled* sequence (old enough that post-GST stragglers have
// arrived). Lateness adapts the settling lag exactly like Fig. 6's timeout:
// an HB older than the current settled point grows the lag.
//
// Assumption beyond HPS (documented honestly): homonyms advance sequence
// numbers at the same rate — true on the simulator's exact timers; on the
// thread runtime clock drift would eventually skew counts. Fig. 6 needs no
// such assumption, which is why the paper's construction pays the replies.
// Cost: n broadcasts per period, total n² copies — versus Fig. 6's n polls
// *plus up to n² reply broadcasts* per round (n³ copies worst case).
#pragma once

#include <map>

#include "common/trajectory.h"
#include "common/types.h"
#include "fd/interfaces.h"
#include "fd/output_hooks.h"
#include "obs/metrics.h"
#include "sim/process.h"

namespace hds {

struct HeartbeatMsg {
  Id id;
  std::int64_t seq;
  friend bool operator==(const HeartbeatMsg&, const HeartbeatMsg&) = default;
};

class HOmegaHeartbeat final : public Process, public HOmegaHandle {
 public:
  static constexpr const char* kMsgType = "HB";

  explicit HOmegaHeartbeat(SimTime period = 4) : period_(period) {}

  [[nodiscard]] HOmegaOut h_omega() const override { return out_; }
  [[nodiscard]] const Trajectory<HOmegaOut>& trace() const { return trace_; }
  [[nodiscard]] std::int64_t lag() const { return lag_; }

  // Leader-change count, lag adaptations, and instant of the last output
  // change. Call before the system starts; null detaches.
  void attach_metrics(obs::MetricsRegistry* reg, const obs::Labels& labels = {});

  // Fires at every real h_omega change. Call before the system starts;
  // null detaches.
  void set_output_listener(FdOutputListener* l) { listener_ = l; }

  void on_start(Env& env) override;
  void on_message(Env& env, const Message& m) override;
  void on_timer(Env& env, TimerId id) override;

 private:
  struct PerId {
    std::map<std::int64_t, std::size_t> count_by_seq;
    SimTime last_heard = 0;
    std::int64_t max_seq = 0;
  };

  void beat(Env& env);
  void evaluate(Env& env);

  SimTime period_;
  std::int64_t seq_ = 0;
  std::int64_t lag_ = 1;  // settled point = max_seq - lag_; grows on lateness
  TimerId beat_timer_ = 0;
  std::map<Id, PerId> heard_;
  HOmegaOut out_;
  Trajectory<HOmegaOut> trace_;

  FdOutputListener* listener_ = nullptr;
  obs::Counter* m_leader_changes_ = nullptr;
  obs::Counter* m_lag_adaptations_ = nullptr;
  obs::Gauge* m_last_change_at_ = nullptr;
};

}  // namespace hds
