// AP (Bonnet & Raynal's anonymous perfect detector) in an anonymous
// synchronous system: each step every process broadcasts an anonymous
// ALIVE mark and sets anap to the number of marks received in the step.
// The count never undershoots the number of processes alive from that point
// on (safety) and equals |Correct| once the last crash is past (liveness).
//
// AP is the source detector of the paper's Lemma 2 (AP -> ◇HP̄) and
// Lemma 3 (AP -> HΣ) reductions, which together with the consensus
// algorithm of Fig. 9 yield anonymous synchronous consensus for any number
// of crashes — the full-stack integration this library reproduces.
//
// Until the first step completes, anap is "infinity" (SIZE_MAX): AP must
// over- rather than under-estimate, and an anonymous process does not know n.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/trajectory.h"
#include "common/types.h"
#include "fd/interfaces.h"
#include "sim/process.h"
#include "sim/sync_system.h"

namespace hds {

struct ApAliveMsg {
  friend bool operator==(const ApAliveMsg&, const ApAliveMsg&) = default;
};

class APCore {
 public:
  void on_step_count(SimTime t, std::size_t count);

  [[nodiscard]] std::size_t anap() const { return anap_; }
  [[nodiscard]] const Trajectory<std::size_t>& trace() const { return trace_; }

 private:
  std::size_t anap_ = std::numeric_limits<std::size_t>::max();
  Trajectory<std::size_t> trace_;
};

class APSyncProcess final : public SyncProcess, public APHandle {
 public:
  static constexpr const char* kMsgType = "AP_ALIVE";

  std::vector<Message> step_send(std::size_t step) override;
  void step_recv(std::size_t step, const std::vector<Message>& delivered) override;

  [[nodiscard]] std::size_t anap() const override { return core_.anap(); }
  [[nodiscard]] const APCore& core() const { return core_; }

 private:
  APCore core_;
};

// Event-engine lock-step host (same contract as HSigmaComponent: step_len
// must exceed the known link bound).
class APComponent final : public Process, public APHandle {
 public:
  explicit APComponent(SimTime step_len);

  void on_start(Env& env) override;
  void on_message(Env& env, const Message& m) override;
  void on_timer(Env& env, TimerId id) override;

  [[nodiscard]] std::size_t anap() const override { return core_.anap(); }
  [[nodiscard]] const APCore& core() const { return core_; }

 private:
  void begin_step(Env& env);

  SimTime step_len_;
  TimerId step_timer_ = 0;
  std::size_t pending_ = 0;
  APCore core_;
};

}  // namespace hds
