// Figure 7: implementation of HΣ in HSS[...] — homonymous synchronous
// system, unknown membership.
//
// Each synchronous step every process broadcasts IDENT(id(p)) and gathers
// the multiset mset of identifiers received in the step; the pair
// (mset, mset) joins h_quora and mset joins h_labels (a quorum is labelled
// by its own identifier multiset).
//
// Two hosts are provided around the shared core:
//  - HSigmaSyncProcess: the paper-exact lock-step version for SyncSystem.
//  - HSigmaComponent:   the same protocol in the event engine, where the
//    known synchronous bounds are realized as a fixed step length strictly
//    greater than the maximum link latency (so a step collects exactly the
//    IDENTs broadcast in it). This is what lets the Fig. 9 consensus run on
//    top of Fig. 7 in a single engine.
#pragma once

#include <vector>

#include "common/multiset.h"
#include "common/trajectory.h"
#include "common/types.h"
#include "fd/interfaces.h"
#include "fd/output_hooks.h"
#include "obs/metrics.h"
#include "sim/process.h"
#include "sim/sync_system.h"

namespace hds {

struct IdentMsg {
  Id id;
  friend bool operator==(const IdentMsg&, const IdentMsg&) = default;
};

// Protocol state shared by both hosts.
class HSigmaCore {
 public:
  // Folds in the identifier multiset observed during one step.
  void on_step_idents(SimTime t, const Multiset<Id>& mset);

  [[nodiscard]] HSigmaSnapshot snapshot() const { return state_; }
  [[nodiscard]] const Trajectory<HSigmaSnapshot>& trace() const { return trace_; }

  // Quorum-size distribution (one observation per newly certified quorum)
  // and total quora stored. Null detaches.
  void attach_metrics(obs::MetricsRegistry* reg, const obs::Labels& labels = {});

  // Fires whenever a step adds a label or a quorum (h_quora/h_labels are
  // monotone, so "added" is the only change). Null detaches.
  void set_output_listener(FdOutputListener* l) { listener_ = l; }

 private:
  HSigmaSnapshot state_;
  Trajectory<HSigmaSnapshot> trace_;
  FdOutputListener* listener_ = nullptr;
  obs::Counter* m_quora_stored_ = nullptr;
  obs::Histogram* m_quorum_size_ = nullptr;
};

class HSigmaSyncProcess final : public SyncProcess, public HSigmaHandle {
 public:
  static constexpr const char* kMsgType = "IDENT";

  explicit HSigmaSyncProcess(Id self_id) : self_id_(self_id) {}

  std::vector<Message> step_send(std::size_t step) override;
  void step_recv(std::size_t step, const std::vector<Message>& delivered) override;

  [[nodiscard]] HSigmaSnapshot snapshot() const override { return core_.snapshot(); }
  [[nodiscard]] const HSigmaCore& core() const { return core_; }
  void attach_metrics(obs::MetricsRegistry* reg, const obs::Labels& labels = {}) {
    core_.attach_metrics(reg, labels);
  }
  void set_output_listener(FdOutputListener* l) { core_.set_output_listener(l); }

 private:
  Id self_id_;
  HSigmaCore core_;
};

class HSigmaComponent final : public Process, public HSigmaHandle {
 public:
  // `step_len` must exceed the known link-latency bound of the synchronous
  // system (e.g. BoundedTiming(delta) with step_len = delta + 1).
  explicit HSigmaComponent(SimTime step_len);

  void on_start(Env& env) override;
  void on_message(Env& env, const Message& m) override;
  void on_timer(Env& env, TimerId id) override;

  [[nodiscard]] HSigmaSnapshot snapshot() const override { return core_.snapshot(); }
  [[nodiscard]] const HSigmaCore& core() const { return core_; }
  void attach_metrics(obs::MetricsRegistry* reg, const obs::Labels& labels = {}) {
    core_.attach_metrics(reg, labels);
  }
  void set_output_listener(FdOutputListener* l) { core_.set_output_listener(l); }

 private:
  void begin_step(Env& env);

  SimTime step_len_;
  TimerId step_timer_ = 0;
  Multiset<Id> pending_;
  HSigmaCore core_;
};

}  // namespace hds
