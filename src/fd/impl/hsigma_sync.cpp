#include "fd/impl/hsigma_sync.h"

namespace hds {

void HSigmaCore::attach_metrics(obs::MetricsRegistry* reg, const obs::Labels& labels) {
  if (reg == nullptr) {
    m_quora_stored_ = nullptr;
    m_quorum_size_ = nullptr;
    return;
  }
  m_quora_stored_ = &reg->counter("hsigma_quora_stored_total", labels);
  m_quorum_size_ = &reg->histogram("fd_quorum_size", obs::size_buckets(), labels);
}

void HSigmaCore::on_step_idents(SimTime t, const Multiset<Id>& mset) {
  if (mset.empty()) return;  // no alive sender observed; nothing to certify
  const Label label = Label::of_multiset(mset);
  const bool new_label = state_.labels.insert(label).second;
  const bool new_quorum = state_.quora.emplace(label, mset).second;  // (mset, mset) is stable
  if (new_quorum) {
    obs::inc(m_quora_stored_);
    obs::observe(m_quorum_size_, static_cast<std::int64_t>(mset.size()));
  }
  trace_.record(t, state_);
  if ((new_label || new_quorum) && listener_ != nullptr) listener_->on_hsigma_change(t, state_);
}

std::vector<Message> HSigmaSyncProcess::step_send(std::size_t) {
  return {make_message(kMsgType, IdentMsg{self_id_})};
}

void HSigmaSyncProcess::step_recv(std::size_t step, const std::vector<Message>& delivered) {
  Multiset<Id> mset;
  for (const Message& m : delivered) {
    if (m.type != kMsgType) continue;
    if (const auto* body = m.as<IdentMsg>()) mset.insert(body->id);
  }
  core_.on_step_idents(static_cast<SimTime>(step), mset);
}

HSigmaComponent::HSigmaComponent(SimTime step_len) : step_len_(step_len) {}

void HSigmaComponent::on_start(Env& env) { begin_step(env); }

void HSigmaComponent::begin_step(Env& env) {
  // Broadcast before arming the timer: with a link bound < step_len_, every
  // IDENT of this step is delivered before the step timer fires.
  env.broadcast(make_message(HSigmaSyncProcess::kMsgType, IdentMsg{env.self_id()}));
  step_timer_ = env.set_timer(step_len_);
}

void HSigmaComponent::on_message(Env&, const Message& m) {
  if (m.type != HSigmaSyncProcess::kMsgType) return;
  if (const auto* body = m.as<IdentMsg>()) pending_.insert(body->id);
}

void HSigmaComponent::on_timer(Env& env, TimerId id) {
  if (id != step_timer_) return;
  core_.on_step_idents(env.local_now(), pending_);
  pending_.clear();
  begin_step(env);
}

}  // namespace hds
