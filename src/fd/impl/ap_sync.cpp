#include "fd/impl/ap_sync.h"

namespace hds {

void APCore::on_step_count(SimTime t, std::size_t count) {
  if (count == 0) return;  // cannot happen for an alive process (self-loop)
  anap_ = count;
  trace_.record(t, anap_);
}

std::vector<Message> APSyncProcess::step_send(std::size_t) {
  return {make_message(kMsgType, ApAliveMsg{})};
}

void APSyncProcess::step_recv(std::size_t step, const std::vector<Message>& delivered) {
  std::size_t count = 0;
  for (const Message& m : delivered) {
    if (m.type == kMsgType) ++count;
  }
  // The count is formed at the *end* of step `step`: a sender that crashed
  // while broadcasting in this step is already dead by then, so the value
  // takes effect at step+1 (AP safety is against the aliveness from the
  // moment of the estimate on).
  core_.on_step_count(static_cast<SimTime>(step) + 1, count);
}

APComponent::APComponent(SimTime step_len) : step_len_(step_len) {}

void APComponent::on_start(Env& env) { begin_step(env); }

void APComponent::begin_step(Env& env) {
  env.broadcast(make_message(APSyncProcess::kMsgType, ApAliveMsg{}));
  step_timer_ = env.set_timer(step_len_);
}

void APComponent::on_message(Env&, const Message& m) {
  if (m.type == APSyncProcess::kMsgType) ++pending_;
}

void APComponent::on_timer(Env& env, TimerId id) {
  if (id != step_timer_) return;
  core_.on_step_count(env.local_now(), pending_);
  pending_ = 0;
  begin_step(env);
}

}  // namespace hds
