#include "fd/impl/ohp_polling.h"

#include <algorithm>

namespace hds {

void OHPPolling::attach_metrics(obs::MetricsRegistry* reg, const obs::Labels& labels) {
  if (reg == nullptr) {
    m_suspicion_changes_ = nullptr;
    m_leader_changes_ = nullptr;
    m_timeout_adaptations_ = nullptr;
    m_quorum_size_ = nullptr;
    m_last_change_at_ = nullptr;
    return;
  }
  m_suspicion_changes_ = &reg->counter("fd_suspicion_changes_total", labels);
  m_leader_changes_ = &reg->counter("fd_leader_changes_total", labels);
  m_timeout_adaptations_ = &reg->counter("fd_timeout_adaptations_total", labels);
  m_quorum_size_ = &reg->histogram("fd_quorum_size", obs::size_buckets(), labels);
  m_last_change_at_ = &reg->gauge("fd_last_output_change_at", labels);
}

void OHPPolling::on_start(Env& env) {
  started_ = true;
  h_omega_ = HOmegaOut{env.self_id(), 1};
  homega_trace_.record(env.local_now(), h_omega_);
  trusted_trace_.record(env.local_now(), h_trusted_);
  timeout_trace_.record(env.local_now(), timeout_);
  begin_round(env);
}

void OHPPolling::begin_round(Env& env) {
  env.broadcast(make_message(kPollType, PollingMsg{r_, env.self_id()}));
  poll_timer_ = env.set_timer(timeout_);
}

void OHPPolling::on_timer(Env& env, TimerId id) {
  if (id != poll_timer_) return;
  finish_round(env);
  begin_round(env);
}

void OHPPolling::finish_round(Env& env) {
  // Lines 12-17: one identifier instance per stored reply covering r_.
  Multiset<Id> tmp;
  for (const StoredReply& rep : replies_) {
    if (rep.lo <= r_ && r_ <= rep.hi) tmp.insert(rep.from_id);
  }
  if (tmp != h_trusted_) {
    obs::inc(m_suspicion_changes_);
    obs::set(m_last_change_at_, env.local_now());
    if (listener_ != nullptr) listener_->on_trusted_change(env.local_now(), tmp);
  }
  h_trusted_ = tmp;
  trusted_trace_.record(env.local_now(), h_trusted_);
  obs::observe(m_quorum_size_, static_cast<std::int64_t>(h_trusted_.size()));
  // Corollary 2: HΩ from the smallest trusted identifier.
  HOmegaOut next;
  if (!h_trusted_.empty()) {
    next = HOmegaOut{h_trusted_.min(), h_trusted_.multiplicity(h_trusted_.min())};
  } else {
    next = HOmegaOut{env.self_id(), 1};
  }
  if (!(next == h_omega_)) {
    obs::inc(m_leader_changes_);
    obs::set(m_last_change_at_, env.local_now());
    if (listener_ != nullptr) listener_->on_homega_change(env.local_now(), next);
  }
  h_omega_ = next;
  homega_trace_.record(env.local_now(), h_omega_);
  ++r_;
  // Replies whose range ended before the (monotonically increasing) current
  // round can never match again.
  std::erase_if(replies_, [this](const StoredReply& rep) { return rep.hi < r_; });
}

void OHPPolling::on_message(Env& env, const Message& m) {
  if (m.type == kPollType) {
    const auto* poll = m.as<PollingMsg>();
    if (poll == nullptr) return;
    // Lines 23-27: first contact with this poller identifier.
    if (mship_.insert(poll->id).second) latest_r_[poll->id] = 0;
    Round& latest = latest_r_[poll->id];
    // Lines 28-30: answer every round not yet answered for this identifier,
    // piggybacked as one range.
    if (latest < poll->r) {
      env.broadcast(
          make_message(kReplyType, PollReplyMsg{latest + 1, poll->r, poll->id, env.self_id()}));
    }
    latest = std::max(latest, poll->r);
    return;
  }
  if (m.type == kReplyType) {
    const auto* rep = m.as<PollReplyMsg>();
    if (rep == nullptr) return;
    if (rep->to_id != env.self_id()) return;  // answers some other identifier
    if (rep->hi >= r_) replies_.push_back(StoredReply{rep->lo, rep->hi, rep->from_id});
    // Lines 33-34: an outdated reply means our round outpaced the network —
    // adapt the timeout.
    if (opts_.adaptive_timeout && rep->lo < r_) {
      ++timeout_;
      timeout_trace_.record(env.local_now(), timeout_);
      obs::inc(m_timeout_adaptations_);
    }
  }
}

}  // namespace hds
