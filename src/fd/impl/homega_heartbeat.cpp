#include "fd/impl/homega_heartbeat.h"

namespace hds {

void HOmegaHeartbeat::attach_metrics(obs::MetricsRegistry* reg, const obs::Labels& labels) {
  if (reg == nullptr) {
    m_leader_changes_ = nullptr;
    m_lag_adaptations_ = nullptr;
    m_last_change_at_ = nullptr;
    return;
  }
  m_leader_changes_ = &reg->counter("fd_leader_changes_total", labels);
  m_lag_adaptations_ = &reg->counter("fd_timeout_adaptations_total", labels);
  m_last_change_at_ = &reg->gauge("fd_last_output_change_at", labels);
}

void HOmegaHeartbeat::on_start(Env& env) {
  out_ = HOmegaOut{env.self_id(), 1};
  trace_.record(env.local_now(), out_);
  beat(env);
}

void HOmegaHeartbeat::beat(Env& env) {
  ++seq_;
  env.broadcast(make_message(kMsgType, HeartbeatMsg{env.self_id(), seq_}));
  beat_timer_ = env.set_timer(period_);
}

void HOmegaHeartbeat::on_timer(Env& env, TimerId id) {
  if (id != beat_timer_) return;
  evaluate(env);
  beat(env);
}

void HOmegaHeartbeat::on_message(Env& env, const Message& m) {
  if (m.type != kMsgType) return;
  const auto* hb = m.as<HeartbeatMsg>();
  if (hb == nullptr) return;
  PerId& rec = heard_[hb->id];
  // A copy older than the settled point means the network outpaced our lag:
  // adapt, exactly as Fig. 6 adapts its timeout on stale replies.
  if (rec.max_seq > 0 && hb->seq <= rec.max_seq - lag_) {
    ++lag_;
    obs::inc(m_lag_adaptations_);
  }
  ++rec.count_by_seq[hb->seq];
  rec.last_heard = env.local_now();
  rec.max_seq = std::max(rec.max_seq, hb->seq);
  // Prune sequences far below any possible settled point.
  while (!rec.count_by_seq.empty() &&
         rec.count_by_seq.begin()->first < rec.max_seq - lag_ - 8) {
    rec.count_by_seq.erase(rec.count_by_seq.begin());
  }
}

void HOmegaHeartbeat::evaluate(Env& env) {
  // Fresh identifiers: heard within (lag_ + 2) periods.
  const SimTime now = env.local_now();
  const SimTime horizon = (lag_ + 2) * period_;
  const PerId* leader = nullptr;
  Id leader_id = env.self_id();
  for (const auto& [id, rec] : heard_) {
    if (now - rec.last_heard > horizon) continue;
    leader = &rec;
    leader_id = id;
    break;  // heard_ is ordered by identifier: first fresh = smallest
  }
  HOmegaOut next{env.self_id(), 1};
  if (leader != nullptr) {
    // Multiplicity from the newest settled sequence (or the nearest older
    // one the pruning kept).
    const std::int64_t settled = leader->max_seq - lag_;
    auto it = leader->count_by_seq.upper_bound(settled);
    if (it != leader->count_by_seq.begin()) {
      --it;
      next = HOmegaOut{leader_id, it->second};
    } else {
      next = HOmegaOut{leader_id, 1};
    }
  }
  if (!(next == out_)) {
    out_ = next;
    trace_.record(now, out_);
    obs::inc(m_leader_changes_);
    obs::set(m_last_change_at_, now);
    if (listener_ != nullptr) listener_->on_homega_change(now, out_);
  }
}

}  // namespace hds
