// Observer-side notifications of failure-detector output changes.
//
// Every FD implementation and reduction already detects when its exported
// variable actually changes (that is what keeps the Trajectory records and
// the change counters honest). An FdOutputListener taps exactly those
// sites: it fires once per real change, with the local timestamp and the
// new value, and never on a re-assignment of an equal value.
//
// This is an observer mechanism in the paper's sense — like labels and
// trajectories, it is a formalization device of the environment, invisible
// to the algorithms. Listeners must not feed anything back into the run.
// The online property monitors (obs/monitor.h) are the intended consumer.
//
// Callback context: on the simulator, calls happen inside the event loop
// (single-threaded); on the thread runtime, inside the process's own
// thread — a listener shared across processes must synchronize internally.
#pragma once

#include "common/multiset.h"
#include "common/types.h"
#include "fd/interfaces.h"

namespace hds {

class FdOutputListener {
 public:
  virtual ~FdOutputListener() = default;

  // ◇HP̄: h_trusted changed (OHPPolling, end of a polling round).
  virtual void on_trusted_change(SimTime /*at*/, const Multiset<Id>& /*h_trusted*/) {}
  // HΩ: the (leader, multiplicity) pair changed (OHPPolling, HOmegaHeartbeat).
  virtual void on_homega_change(SimTime /*at*/, const HOmegaOut& /*out*/) {}
  // HΣ: a label or quorum was added (HSigmaCore hosts, Σ→HΣ transformers).
  virtual void on_hsigma_change(SimTime /*at*/, const HSigmaSnapshot& /*snap*/) {}
  // Σ: trusted changed (HΣ→Σ reduction).
  virtual void on_sigma_change(SimTime /*at*/, const Multiset<Id>& /*trusted*/) {}
};

// Fans one change-site out to two listeners (either may be null), first `a`
// then `b` — how the monitor and the streaming QoS estimator share the
// single listener slot an FD implementation exposes. Composes: tee of tees
// for wider fan-out.
class FdOutputTee final : public FdOutputListener {
 public:
  FdOutputTee(FdOutputListener* a, FdOutputListener* b) : a_(a), b_(b) {}

  void on_trusted_change(SimTime at, const Multiset<Id>& m) override {
    if (a_ != nullptr) a_->on_trusted_change(at, m);
    if (b_ != nullptr) b_->on_trusted_change(at, m);
  }
  void on_homega_change(SimTime at, const HOmegaOut& out) override {
    if (a_ != nullptr) a_->on_homega_change(at, out);
    if (b_ != nullptr) b_->on_homega_change(at, out);
  }
  void on_hsigma_change(SimTime at, const HSigmaSnapshot& snap) override {
    if (a_ != nullptr) a_->on_hsigma_change(at, snap);
    if (b_ != nullptr) b_->on_hsigma_change(at, snap);
  }
  void on_sigma_change(SimTime at, const Multiset<Id>& m) override {
    if (a_ != nullptr) a_->on_sigma_change(at, m);
    if (b_ != nullptr) b_->on_sigma_change(at, m);
  }

 private:
  FdOutputListener* a_;
  FdOutputListener* b_;
};

}  // namespace hds
