#include "fd/ground_truth.h"

#include <algorithm>

#include "sim/sync_system.h"
#include "sim/system.h"

namespace hds {

Multiset<Id> GroundTruth::correct_ids() const {
  Multiset<Id> out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (correct[i]) out.insert(ids[i]);
  }
  return out;
}

std::vector<ProcIndex> GroundTruth::correct_indices() const {
  std::vector<ProcIndex> out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (correct[i]) out.push_back(i);
  }
  return out;
}

std::size_t GroundTruth::correct_count() const {
  return static_cast<std::size_t>(std::count(correct.begin(), correct.end(), true));
}

GroundTruth GroundTruth::from(const System& sys) {
  GroundTruth gt;
  gt.ids = sys.ids();
  gt.correct.resize(sys.n());
  for (ProcIndex i = 0; i < sys.n(); ++i) gt.correct[i] = sys.is_correct(i);
  return gt;
}

GroundTruth GroundTruth::from(const SyncSystem& sys) {
  GroundTruth gt;
  gt.correct.resize(sys.n());
  for (ProcIndex i = 0; i < sys.n(); ++i) {
    gt.ids.push_back(sys.id_of(i));
    gt.correct[i] = sys.is_correct(i);
  }
  return gt;
}

}  // namespace hds
