// Ground-truth failure-detector oracles.
//
// The consensus algorithms of Section 5 are stated for systems *enriched
// with* a detector of a given class; correctness must hold for every
// detector in the class, including ones that misbehave arbitrarily before
// stabilizing. Each oracle therefore takes a stabilization time and a noise
// policy: before `stabilize_at` it emits adversarial (but class-legal where
// the class constrains all times, e.g. HΣ safety) outputs, after it the
// canonical stable output. Oracles read the run's ground truth — crash
// schedule and membership — which processes themselves never see.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/multiset.h"
#include "common/types.h"
#include "fd/ground_truth.h"
#include "fd/interfaces.h"

namespace hds {

// The oracle's notion of current time (the simulator clock, or a step
// counter in the synchronous engine).
using ClockFn = std::function<SimTime()>;

// --------------------------------------------------------------------------
// HΩ oracle. Pre-stability: rotating leaders with wrong multiplicities (the
// class puts no constraint on any finite prefix). Post: leader is the
// smallest identifier in I(Correct), multiplicity exact.
class OracleHOmega {
 public:
  enum class Noise { kNone, kRotating };
  OracleHOmega(GroundTruth gt, ClockFn now, SimTime stabilize_at, Noise noise = Noise::kRotating);

  [[nodiscard]] const HOmegaHandle& handle(ProcIndex p) const { return *handles_.at(p); }

 private:
  class H;
  GroundTruth gt_;
  ClockFn now_;
  SimTime stabilize_at_;
  Noise noise_;
  HOmegaOut stable_;
  std::vector<std::unique_ptr<HOmegaHandle>> handles_;
};

// --------------------------------------------------------------------------
// ◇HP̄ oracle. Pre-stability alternates between I(Pi) and spurious singleton
// multisets; post-stability permanently I(Correct).
class OracleOHP {
 public:
  enum class Noise { kNone, kChurn };
  OracleOHP(GroundTruth gt, ClockFn now, SimTime stabilize_at, Noise noise = Noise::kChurn);

  [[nodiscard]] const OHPHandle& handle(ProcIndex p) const { return *handles_.at(p); }

 private:
  class H;
  GroundTruth gt_;
  ClockFn now_;
  SimTime stabilize_at_;
  Noise noise_;
  std::vector<std::unique_ptr<OHPHandle>> handles_;
};

// --------------------------------------------------------------------------
// HΣ oracle. Label "all" with quorum I(Pi) is present everywhere from the
// start (safe: the only matching quorum set is Pi itself); after
// stabilization every correct process also carries label "correct" with
// quorum I(Correct). Safety holds at all times, liveness from stabilization.
class OracleHSigma {
 public:
  OracleHSigma(GroundTruth gt, ClockFn now, SimTime stabilize_at);

  [[nodiscard]] const HSigmaHandle& handle(ProcIndex p) const { return *handles_.at(p); }

 private:
  class H;
  GroundTruth gt_;
  ClockFn now_;
  SimTime stabilize_at_;
  std::vector<std::unique_ptr<HSigmaHandle>> handles_;
};

// --------------------------------------------------------------------------
// Σ oracle (unique-id systems). kCoarse: I(Pi) then I(Correct). kPivot: a
// fixed correct pivot plus a pseudo-randomly varying subset — every two
// outputs intersect at the pivot, exercising consumers against quorum churn.
class OracleSigma {
 public:
  enum class Mode { kCoarse, kPivot };
  OracleSigma(GroundTruth gt, ClockFn now, SimTime stabilize_at, Mode mode = Mode::kCoarse);

  [[nodiscard]] const SigmaHandle& handle(ProcIndex p) const { return *handles_.at(p); }

 private:
  class H;
  GroundTruth gt_;
  ClockFn now_;
  SimTime stabilize_at_;
  Mode mode_;
  Id pivot_;
  std::vector<std::unique_ptr<SigmaHandle>> handles_;
};

// --------------------------------------------------------------------------
// AP oracle. anap = an upper bound on |alive| at the query time (the exact
// alive count when a counter is supplied, else n), and exactly |Correct|
// from stabilization on.
class OracleAP {
 public:
  OracleAP(GroundTruth gt, ClockFn now, SimTime stabilize_at,
           std::function<std::size_t(SimTime)> alive_count = {});

  [[nodiscard]] const APHandle& handle(ProcIndex p) const { return *handles_.at(p); }

 private:
  class H;
  GroundTruth gt_;
  ClockFn now_;
  SimTime stabilize_at_;
  std::function<std::size_t(SimTime)> alive_count_;
  std::vector<std::unique_ptr<APHandle>> handles_;
};

// --------------------------------------------------------------------------
// AΣ oracle: pair (0, n) everywhere from the start; pair (1, |Correct|) at
// correct processes from stabilization.
class OracleASigma {
 public:
  OracleASigma(GroundTruth gt, ClockFn now, SimTime stabilize_at);

  [[nodiscard]] const ASigmaHandle& handle(ProcIndex p) const { return *handles_.at(p); }

 private:
  class H;
  GroundTruth gt_;
  ClockFn now_;
  SimTime stabilize_at_;
  std::vector<std::unique_ptr<ASigmaHandle>> handles_;
};

// --------------------------------------------------------------------------
// AΩ oracle: from stabilization, true exactly at the first correct process.
class OracleAOmega {
 public:
  OracleAOmega(GroundTruth gt, ClockFn now, SimTime stabilize_at);

  [[nodiscard]] const AOmegaHandle& handle(ProcIndex p) const { return *handles_.at(p); }

 private:
  class H;
  GroundTruth gt_;
  ClockFn now_;
  SimTime stabilize_at_;
  ProcIndex stable_leader_;
  std::vector<std::unique_ptr<AOmegaHandle>> handles_;
};

}  // namespace hds
