#include "obs/window_qos.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace hds::obs {

WindowQos::WindowQos(WindowQosConfig cfg)
    : cfg_(std::move(cfg)), correct_ids_(cfg_.gt.correct_ids()) {
  if (cfg_.width <= 0) throw std::invalid_argument("WindowQos: width must be positive");
  if (cfg_.windows == 0) throw std::invalid_argument("WindowQos: need at least one sub-window");
  for (ProcIndex i = 0; i < cfg_.gt.n(); ++i) {
    ++all_mult_[cfg_.gt.ids[i]];
    if (i < cfg_.crash_at.size() && cfg_.crash_at[i] >= 0) {
      crash_times_[cfg_.gt.ids[i]].push_back(cfg_.crash_at[i]);
    }
  }
  for (auto& [id, times] : crash_times_) {
    (void)id;
    std::sort(times.begin(), times.end());
  }
  proxies_.reserve(cfg_.gt.n());
  for (ProcIndex i = 0; i < cfg_.gt.n(); ++i) {
    auto proxy = std::make_unique<ProcListener>();
    proxy->owner = this;
    proxy->proc = i;
    proxies_.push_back(std::move(proxy));
  }
  ring_.resize(cfg_.windows);
  obs_.resize(cfg_.gt.n());
}

FdOutputListener* WindowQos::listener(ProcIndex i) {
  if (i >= proxies_.size()) throw std::out_of_range("WindowQos::listener: bad proc index");
  return proxies_[i].get();
}

WindowQos::Bucket& WindowQos::advance(SimTime at) {
  if (at < 0) at = 0;
  std::int64_t idx = at / cfg_.width;
  const auto windows = static_cast<std::int64_t>(cfg_.windows);
  if (cur_idx_ < 0) {
    cur_idx_ = idx;
  } else if (idx > cur_idx_) {
    if (idx - cur_idx_ >= windows) {
      for (Bucket& b : ring_) b = Bucket{};
    } else {
      for (std::int64_t i = cur_idx_ + 1; i <= idx; ++i) ring_[i % windows] = Bucket{};
    }
    cur_idx_ = idx;
  } else if (idx < cur_idx_) {
    // A straggler timestamp (thread-runtime clock skew): clamp into the
    // oldest live sub-window rather than corrupt an already-recycled slot.
    idx = std::max<std::int64_t>(0, std::max(idx, cur_idx_ - windows + 1));
  }
  return ring_[idx % windows];
}

void WindowQos::trusted_changed(ProcIndex p, SimTime at, const Multiset<Id>& m) {
  std::lock_guard lk(mu_);
  Bucket& b = advance(at);
  ++b.events;
  ++total_events_;
  ObserverState& o = obs_[p];

  // Detection latency: for each label with crashes due by `at`, the observed
  // multiplicity deficit caps how many of those crashes count as detected.
  for (const auto& [x, times] : crash_times_) {
    const auto crashed = static_cast<std::size_t>(
        std::upper_bound(times.begin(), times.end(), at) - times.begin());
    if (crashed == 0) continue;
    const std::size_t observed = m.multiplicity(x);
    const std::size_t mult_all = all_mult_.at(x);
    const std::size_t deficit = mult_all > observed ? mult_all - observed : 0;
    const std::size_t detectable = std::min(crashed, deficit);
    std::size_t& done = o.detected[x];
    while (done < detectable) {
      const SimTime lat = at - times[done];
      ++done;
      ++b.det_count;
      b.det_lat_sum += static_cast<std::uint64_t>(lat);
      b.det_lat_max = std::max(b.det_lat_max, lat);
    }
  }

  const bool mistaken = !correct_ids_.is_subset_of(m);
  if (mistaken && !o.mistaken) {
    o.mistaken = true;
    o.mistake_since = at;
    ++b.mistake_entries;
  } else if (!mistaken && o.mistaken) {
    o.mistaken = false;
    b.mistake_time += std::max<SimTime>(0, at - o.mistake_since);
  }
}

void WindowQos::homega_changed(ProcIndex p, SimTime at, const HOmegaOut& out) {
  std::lock_guard lk(mu_);
  Bucket& b = advance(at);
  ++b.events;
  ++total_events_;
  ObserverState& o = obs_[p];
  if (o.homega_seen && !(o.last_homega == out)) ++b.flaps;
  o.homega_seen = true;
  o.last_homega = out;
}

void WindowQos::hsigma_changed(ProcIndex p, SimTime at, const HSigmaSnapshot& snap) {
  (void)p;
  std::lock_guard lk(mu_);
  Bucket& b = advance(at);
  ++b.events;
  ++total_events_;
  for (const auto& [x, q] : snap.quora) {
    (void)x;
    if (seen_quora_.contains(q)) continue;
    auto min_margin = static_cast<std::ptrdiff_t>(q.size());  // self-pair
    for (const Multiset<Id>& s : seen_quora_) {
      min_margin = std::min(min_margin, static_cast<std::ptrdiff_t>(q.intersection(s).size()));
    }
    if (b.margin_min < 0 || min_margin < b.margin_min) b.margin_min = min_margin;
    seen_quora_.insert(q);
  }
}

WindowQosStats WindowQos::aggregate_locked() const {
  WindowQosStats s;
  if (cur_idx_ < 0) return s;
  const auto windows = static_cast<std::int64_t>(cfg_.windows);
  const std::int64_t first = std::max<std::int64_t>(0, cur_idx_ - windows + 1);
  s.window_start = first * cfg_.width;
  s.window_end = (cur_idx_ + 1) * cfg_.width;
  std::uint64_t lat_sum = 0;
  for (std::int64_t i = first; i <= cur_idx_; ++i) {
    const Bucket& b = ring_[i % windows];
    s.events += b.events;
    s.detections += b.det_count;
    lat_sum += b.det_lat_sum;
    s.detection_latency_max = std::max(s.detection_latency_max, b.det_lat_max);
    s.mistake_intervals += b.mistake_entries;
    s.mistake_time += b.mistake_time;
    s.homega_flaps += b.flaps;
    if (b.margin_min >= 0 && (s.quorum_margin_min < 0 || b.margin_min < s.quorum_margin_min)) {
      s.quorum_margin_min = b.margin_min;
    }
  }
  if (s.detections > 0) {
    s.detection_latency_mean = static_cast<double>(lat_sum) / static_cast<double>(s.detections);
  }
  for (const ObserverState& o : obs_) {
    if (o.mistaken) ++s.mistakes_open;
  }
  return s;
}

void WindowQos::refresh_gauges(const WindowQosStats& s) {
  if (cfg_.metrics == nullptr) return;
  if (g_end_ == nullptr) {
    MetricsRegistry& r = *cfg_.metrics;
    g_end_ = &r.gauge("qos_window_end");
    g_events_ = &r.gauge("qos_window_events");
    g_detections_ = &r.gauge("qos_window_detections");
    g_det_mean_ = &r.gauge("qos_window_detection_latency_mean");
    g_det_max_ = &r.gauge("qos_window_detection_latency_max");
    g_mistake_intervals_ = &r.gauge("qos_window_mistake_intervals");
    g_mistake_time_ = &r.gauge("qos_window_mistake_time");
    g_mistakes_open_ = &r.gauge("qos_window_mistakes_open");
    g_flaps_ = &r.gauge("qos_window_homega_flaps");
    g_margin_min_ = &r.gauge("qos_window_quorum_margin_min");
  }
  g_end_->set(s.window_end);
  g_events_->set(static_cast<std::int64_t>(s.events));
  g_detections_->set(static_cast<std::int64_t>(s.detections));
  g_det_mean_->set(std::llround(s.detection_latency_mean));
  g_det_max_->set(s.detection_latency_max);
  g_mistake_intervals_->set(static_cast<std::int64_t>(s.mistake_intervals));
  g_mistake_time_->set(s.mistake_time);
  g_mistakes_open_->set(static_cast<std::int64_t>(s.mistakes_open));
  g_flaps_->set(static_cast<std::int64_t>(s.homega_flaps));
  g_margin_min_->set(s.quorum_margin_min);
}

WindowQosStats WindowQos::stats() {
  std::lock_guard lk(mu_);
  const WindowQosStats s = aggregate_locked();
  refresh_gauges(s);
  return s;
}

Json WindowQos::json() {
  std::lock_guard lk(mu_);
  Json doc = Json::object();
  doc["width"] = cfg_.width;
  doc["windows"] = cfg_.windows;
  Json events = Json::array();
  Json detections = Json::array();
  Json mistake_time = Json::array();
  Json mistake_intervals = Json::array();
  Json flaps = Json::array();
  Json margin_min = Json::array();
  if (cur_idx_ >= 0) {
    const auto windows = static_cast<std::int64_t>(cfg_.windows);
    const std::int64_t first = std::max<std::int64_t>(0, cur_idx_ - windows + 1);
    doc["window_end"] = (cur_idx_ + 1) * cfg_.width;
    for (std::int64_t i = first; i <= cur_idx_; ++i) {
      const Bucket& b = ring_[i % windows];
      events.push_back(b.events);
      detections.push_back(b.det_count);
      mistake_time.push_back(b.mistake_time);
      mistake_intervals.push_back(b.mistake_entries);
      flaps.push_back(b.flaps);
      margin_min.push_back(b.margin_min);
    }
  } else {
    doc["window_end"] = 0;
  }
  doc["events"] = std::move(events);
  doc["detections"] = std::move(detections);
  doc["mistake_time"] = std::move(mistake_time);
  doc["mistake_intervals"] = std::move(mistake_intervals);
  doc["flaps"] = std::move(flaps);
  doc["margin_min"] = std::move(margin_min);
  return doc;
}

}  // namespace hds::obs
