// Online property monitors over failure-detector output streams.
//
// An OnlineMonitor subscribes to FD output changes *during* a run (through
// the FdOutputListener hooks every implementation and reduction exposes)
// and classifies each change against the run's ground truth:
//
//   violations — the observed behaviour is incompatible with the detector
//   class once the run should have stabilized:
//     suspect-correct      ◇HP̄ output misses a correct instance after
//                          watch_from (a correct process is suspected);
//     leader-flap          HΩ output changed after watch_from;
//     quorum-disjoint      two realized HΣ quora have empty intersection
//                          (safety — checked from t=0, never gated);
//     sigma-trust-crashed  Σ trusts a crashed instance after watch_from.
//
//   warnings — suspicious but not property-violating:
//     late-change    ◇HP̄ output changed after watch_from but still covers
//                    every correct instance (churn without wrong suspicion);
//     dead-leader    HΩ elected an identifier carried by no correct process
//                    (gated by watch_from: pre-stabilization it is expected);
//     quorum-margin  two realized quora intersect in at most
//                    quorum_margin_warn instances (one crash from disjoint).
//
// watch_from is the caller's stabilization budget (e.g. GST plus slack): a
// clean run whose detectors settle before it produces no events at all.
// Events are mirrored into a TraceLog (kMonitorWarn / kMonitorViolation)
// and counted in a MetricsRegistry when configured.
//
// The monitor is observer machinery: it never feeds anything back into the
// run. It is internally synchronized, so the per-process listeners may be
// driven from rt::RtSystem threads as well as from the simulator loop.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/multiset.h"
#include "common/types.h"
#include "fd/ground_truth.h"
#include "fd/output_hooks.h"
#include "obs/causal.h"
#include "obs/metrics.h"
#include "sim/tracelog.h"

namespace hds::obs {

struct MonitorEvent {
  enum class Severity : std::uint8_t { kWarning, kViolation };

  SimTime at = 0;
  Severity severity = Severity::kWarning;
  ProcIndex proc = 0;
  std::string rule;    // e.g. "suspect-correct"
  std::string detail;  // human-readable specifics

  friend bool operator==(const MonitorEvent&, const MonitorEvent&) = default;
};

struct MonitorConfig {
  GroundTruth gt;
  // Changes at or after this instant are judged; before it the detectors
  // are still allowed to converge. Safety rules (quorum intersection)
  // ignore it.
  SimTime watch_from = 0;
  // Intersection margin at or below which a quorum pair warns.
  std::size_t quorum_margin_warn = 1;
  TraceLog* trace = nullptr;          // optional mirror; null disables
  MetricsRegistry* metrics = nullptr;  // optional counters; null disables
  // Optional causal session of the dispatch loop driving the listeners.
  // When set, mirrored monitor events carry the lineage id of the event
  // being dispatched when the rule fired, so causal_chain() can explain a
  // violation by its message ancestry. Single-threaded dispatch only (the
  // simulator loop); leave null when listeners run on rt threads.
  const CausalSession* causal = nullptr;
};

class OnlineMonitor {
 public:
  explicit OnlineMonitor(MonitorConfig cfg);

  // Stable per-process listener to hand to set_output_listener(); valid for
  // the monitor's lifetime. i must be < gt.n().
  [[nodiscard]] FdOutputListener* listener(ProcIndex i);

  // Late-binds MonitorConfig::causal. The monitor is typically constructed
  // before the System whose dispatch session it should observe; the harness
  // calls this right after the System exists (and only when its trace is
  // on). Call before the run starts — not synchronized against listeners.
  void set_causal(const CausalSession* c) { cfg_.causal = c; }

  [[nodiscard]] std::vector<MonitorEvent> events() const;
  [[nodiscard]] std::size_t violation_count() const;
  [[nodiscard]] std::size_t warning_count() const;
  [[nodiscard]] std::map<std::string, std::size_t> counts_by_rule() const;
  // Events discarded once the retention cap was hit (counters keep going).
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  // One proxy per process: tags the shared monitor with the proc index.
  struct ProcListener final : FdOutputListener {
    OnlineMonitor* owner = nullptr;
    ProcIndex proc = 0;

    void on_trusted_change(SimTime at, const Multiset<Id>& m) override {
      owner->trusted_changed(proc, at, m);
    }
    void on_homega_change(SimTime at, const HOmegaOut& out) override {
      owner->homega_changed(proc, at, out);
    }
    void on_hsigma_change(SimTime at, const HSigmaSnapshot& snap) override {
      owner->hsigma_changed(proc, at, snap);
    }
    void on_sigma_change(SimTime at, const Multiset<Id>& m) override {
      owner->sigma_changed(proc, at, m);
    }
  };

  void trusted_changed(ProcIndex p, SimTime at, const Multiset<Id>& m);
  void homega_changed(ProcIndex p, SimTime at, const HOmegaOut& out);
  void hsigma_changed(ProcIndex p, SimTime at, const HSigmaSnapshot& snap);
  void sigma_changed(ProcIndex p, SimTime at, const Multiset<Id>& m);

  // mu_ must be held.
  void emit(SimTime at, MonitorEvent::Severity sev, ProcIndex p, const char* rule,
            std::string detail);

  static constexpr std::size_t kMaxEvents = 10'000;

  MonitorConfig cfg_;
  Multiset<Id> correct_ids_;
  std::vector<std::unique_ptr<ProcListener>> proxies_;

  mutable std::mutex mu_;
  std::vector<MonitorEvent> events_;
  std::uint64_t dropped_ = 0;
  std::size_t violations_ = 0;
  std::size_t warnings_ = 0;
  std::set<Multiset<Id>> seen_quora_;  // distinct quora across all processes
};

}  // namespace hds::obs
