#include "obs/telemetry.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "obs/causal.h"

namespace hds::obs {

namespace {

// All kinds, for the name -> enum direction (kind_name covers the other).
constexpr TraceEvent::Kind kAllKinds[] = {
    TraceEvent::Kind::kStart,     TraceEvent::Kind::kBroadcast,
    TraceEvent::Kind::kDeliver,   TraceEvent::Kind::kLost,
    TraceEvent::Kind::kLostDying, TraceEvent::Kind::kDuplicate,
    TraceEvent::Kind::kToDead,    TraceEvent::Kind::kTimer,
    TraceEvent::Kind::kCrash,     TraceEvent::Kind::kMonitorWarn,
    TraceEvent::Kind::kMonitorViolation,
};

TraceEvent::Kind kind_from_name(const std::string& name) {
  for (const TraceEvent::Kind k : kAllKinds) {
    if (name == TraceEvent::kind_name(k)) return k;
  }
  throw std::runtime_error("telemetry: unknown event kind \"" + name + "\"");
}

// Lineage ids cross the telemetry channel as "node:seq" strings — a u64 can
// exceed the 2^53 range JSON numbers represent exactly.
std::uint64_t causal_id_parse(const std::string& s) {
  const std::size_t colon = s.find(':');
  if (colon == std::string::npos) throw std::runtime_error("telemetry: bad lineage id " + s);
  const std::uint64_t node = std::stoull(s.substr(0, colon));
  const std::uint64_t seq = std::stoull(s.substr(colon + 1));
  return causal_node_base(node) | seq;
}

Json event_to_json(const TraceEvent& e) {
  Json j = Json::object();
  j["at"] = e.at;
  j["k"] = TraceEvent::kind_name(e.kind);
  j["p"] = e.proc;
  if (!e.msg_type.empty()) j["t"] = e.msg_type;
  if (e.causal_id != 0) {
    j["c"] = causal_id_str(e.causal_id);
    if (e.causal_parent != 0) j["pa"] = causal_id_str(e.causal_parent);
  }
  return j;
}

TraceEvent event_from_json(const Json& j) {
  TraceEvent e;
  e.at = static_cast<SimTime>(j.number_or("at", 0));
  const Json* k = j.find("k");
  if (k == nullptr || !k->is_string()) throw std::runtime_error("telemetry: event missing kind");
  e.kind = kind_from_name(k->str());
  e.proc = static_cast<ProcIndex>(j.number_or("p", 0));
  e.msg_type = j.string_or("t", {});
  const std::string c = j.string_or("c", {});
  if (!c.empty()) e.causal_id = causal_id_parse(c);
  const std::string pa = j.string_or("pa", {});
  if (!pa.empty()) e.causal_parent = causal_id_parse(pa);
  return e;
}

}  // namespace

Json telemetry_delta_to_json(const TelemetryDelta& d) {
  Json j = Json::object();
  j["schema"] = kTelemetrySchema;
  j["node"] = d.node;
  j["id"] = d.id;
  j["seq"] = d.seq;
  j["final"] = d.final_flush;
  j["epoch_wall_us"] = d.epoch_wall_us;
  j["hello_done_ms"] = d.hello_done_ms;
  if (d.admin_port != 0) j["admin_port"] = d.admin_port;
  j["dropped"] = d.dropped;
  Json evs = Json::array();
  for (const TraceEvent& e : d.events) evs.push_back(event_to_json(e));
  j["events"] = std::move(evs);
  // The metrics snapshot is already JSON text; it rides as a string so the
  // delta codec needs no knowledge of the metrics schema.
  if (!d.metrics_json.empty()) j["metrics"] = d.metrics_json;
  return j;
}

TelemetryDelta telemetry_delta_from_json(const Json& j) {
  if (j.string_or("schema", {}) != kTelemetrySchema) {
    throw std::runtime_error("telemetry: not an " + std::string(kTelemetrySchema) + " datagram");
  }
  TelemetryDelta d;
  d.node = static_cast<ProcIndex>(j.number_or("node", 0));
  d.id = static_cast<Id>(j.number_or("id", 0));
  d.seq = static_cast<std::uint64_t>(j.number_or("seq", 0));
  const Json* fin = j.find("final");
  d.final_flush = fin != nullptr && fin->is_bool() && fin->boolean();
  d.epoch_wall_us = static_cast<std::int64_t>(j.number_or("epoch_wall_us", 0));
  d.hello_done_ms = static_cast<SimTime>(j.number_or("hello_done_ms", -1));
  d.admin_port = static_cast<std::uint16_t>(j.number_or("admin_port", 0));
  d.dropped = static_cast<std::uint64_t>(j.number_or("dropped", 0));
  if (const Json* evs = j.find("events"); evs != nullptr && evs->is_array()) {
    d.events.reserve(evs->items().size());
    for (const Json& e : evs->items()) d.events.push_back(event_from_json(e));
  }
  d.metrics_json = j.string_or("metrics", {});
  return d;
}

std::vector<TelemetryDelta> chunk_telemetry_delta(const TelemetryDelta& d,
                                                  std::size_t max_events) {
  if (max_events == 0) max_events = 1;
  std::vector<TelemetryDelta> out;
  std::size_t off = 0;
  std::uint64_t seq = d.seq;
  do {
    TelemetryDelta c = d;
    c.seq = seq++;
    const std::size_t take = std::min(max_events, d.events.size() - off);
    c.events.assign(d.events.begin() + static_cast<std::ptrdiff_t>(off),
                    d.events.begin() + static_cast<std::ptrdiff_t>(off + take));
    off += take;
    const bool last = off >= d.events.size();
    c.final_flush = last && d.final_flush;
    if (!last) c.metrics_json.clear();
    out.push_back(std::move(c));
  } while (off < d.events.size());
  return out;
}

void TelemetryMerger::ingest(const TelemetryDelta& d) {
  PerNode& n = nodes_[d.node];
  // Crash-restart: a respawned incarnation announces a fresh (later)
  // epoch_wall_us and restarts its delta stream at seq 0. Without a reset
  // the dedup set would swallow the whole new stream as "replays". The
  // event timeline restarts too — events are stamped relative to their
  // incarnation's epoch, so mixing incarnations would skew the merged
  // trace. Late datagrams from the dead incarnation are counted and
  // dropped.
  if (d.epoch_wall_us != 0 && n.epoch_wall_us != 0 && d.epoch_wall_us != n.epoch_wall_us) {
    if (d.epoch_wall_us < n.epoch_wall_us) {
      ++n.stale_deltas;
      return;
    }
    ++n.restarts;
    n.seen_seqs.clear();
    n.dup_deltas = 0;
    n.max_seq = 0;
    n.got_final = false;
    n.hello_done_ms = -1;
    n.admin_port = 0;
    n.metrics_json.clear();
    n.events.clear();
    n.dropped = 0;
  }
  if (n.seen_seqs.empty() || d.id != 0) n.id = d.id;
  if (d.epoch_wall_us != 0) n.epoch_wall_us = d.epoch_wall_us;
  if (d.hello_done_ms >= 0) n.hello_done_ms = d.hello_done_ms;
  if (d.admin_port != 0) n.admin_port = d.admin_port;
  n.dropped = std::max(n.dropped, d.dropped);
  n.max_seq = std::max(n.max_seq, d.seq);
  if (d.final_flush) n.got_final = true;
  if (!d.metrics_json.empty()) n.metrics_json = d.metrics_json;
  // A replayed sequence number means the datagram arrived twice; appending
  // its events again would double-count them in the merged trace, and
  // counting it as a fresh delta would hide a real loss elsewhere.
  if (!n.seen_seqs.insert(d.seq).second) {
    ++n.dup_deltas;
    return;
  }
  n.events.insert(n.events.end(), d.events.begin(), d.events.end());
}

bool TelemetryMerger::node_final(ProcIndex node) const {
  const auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.got_final;
}

std::uint16_t TelemetryMerger::node_admin_port(ProcIndex node) const {
  const auto it = nodes_.find(node);
  return it != nodes_.end() ? it->second.admin_port : 0;
}

std::vector<NodeTrace> TelemetryMerger::node_traces() const {
  std::vector<NodeTrace> out;
  out.reserve(nodes_.size());
  for (const auto& [node, pn] : nodes_) {
    NodeTrace nt;
    nt.node = node;
    nt.id = pn.id;
    nt.epoch_wall_us = pn.epoch_wall_us;
    nt.dropped = pn.dropped;
    nt.events = pn.events;
    out.push_back(std::move(nt));
  }
  return out;
}

ClusterQos TelemetryMerger::cluster_qos() const {
  ClusterQos q;
  // Aligned send instants per lineage id, across every node's stream.
  std::int64_t min_epoch = 0;
  bool have_epoch = false;
  for (const auto& [node, pn] : nodes_) {
    (void)node;
    if (!have_epoch || pn.epoch_wall_us < min_epoch) min_epoch = pn.epoch_wall_us;
    have_epoch = true;
  }
  std::unordered_map<std::uint64_t, std::int64_t> send_us;
  for (const auto& [node, pn] : nodes_) {
    (void)node;
    const std::int64_t off = pn.epoch_wall_us - min_epoch;
    for (const TraceEvent& e : pn.events) {
      if (e.kind == TraceEvent::Kind::kBroadcast && e.causal_id != 0) {
        send_us.emplace(e.causal_id, off + static_cast<std::int64_t>(e.at) * 1000);
      }
    }
  }
  q.broadcasts = send_us.size();
  std::vector<double> lat_ms;
  for (const auto& [node, pn] : nodes_) {
    (void)node;
    const std::int64_t off = pn.epoch_wall_us - min_epoch;
    for (const TraceEvent& e : pn.events) {
      if (e.kind != TraceEvent::Kind::kDeliver || e.causal_id == 0) continue;
      const auto it = send_us.find(e.causal_id);
      if (it == send_us.end()) continue;
      ++q.deliveries_matched;
      const std::int64_t recv = off + static_cast<std::int64_t>(e.at) * 1000;
      // Clamp: wall-clock alignment across processes can skew a local
      // loopback delivery slightly before its send.
      lat_ms.push_back(std::max<std::int64_t>(0, recv - it->second) / 1000.0);
    }
  }
  if (!lat_ms.empty()) {
    std::sort(lat_ms.begin(), lat_ms.end());
    double sum = 0;
    for (const double v : lat_ms) sum += v;
    q.latency_ms_mean = sum / static_cast<double>(lat_ms.size());
    const auto at_quantile = [&](double f) {
      const auto idx = static_cast<std::size_t>(f * static_cast<double>(lat_ms.size() - 1));
      return lat_ms[idx];
    };
    q.latency_ms_p50 = at_quantile(0.5);
    q.latency_ms_p99 = at_quantile(0.99);
    q.latency_ms_max = lat_ms.back();
  }
  return q;
}

Json TelemetryMerger::summary() const {
  Json j = Json::object();
  j["schema"] = kTelemetrySchema;
  Json nodes = Json::object();
  for (const auto& [node, pn] : nodes_) {
    Json nj = Json::object();
    nj["id"] = pn.id;
    const auto distinct = static_cast<std::uint64_t>(pn.seen_seqs.size());
    nj["deltas"] = distinct;
    nj["dup_deltas"] = pn.dup_deltas;
    // Sequence gaps: with seq numbered from 0, max_seq+1 deltas were sent up
    // to the highest one seen. Only distinct sequence numbers count toward
    // coverage, so replayed datagrams cannot cancel out real losses.
    const std::uint64_t expected = pn.max_seq + 1;
    nj["lost_deltas"] = expected > distinct ? expected - distinct : 0;
    nj["trace_dropped"] = pn.dropped;
    nj["final"] = pn.got_final;
    if (pn.restarts != 0) nj["restarts"] = pn.restarts;
    if (pn.stale_deltas != 0) nj["stale_deltas"] = pn.stale_deltas;
    if (pn.admin_port != 0) nj["admin_port"] = pn.admin_port;
    nj["hello_done_ms"] = pn.hello_done_ms;
    nj["epoch_wall_us"] = pn.epoch_wall_us;
    nj["events"] = pn.events.size();
    if (!pn.metrics_json.empty()) {
      try {
        nj["metrics"] = Json::parse(pn.metrics_json);
      } catch (const JsonParseError&) {
        nj["metrics"] = pn.metrics_json;
      }
    }
    nodes[std::to_string(node)] = std::move(nj);
  }
  j["nodes"] = std::move(nodes);
  const ClusterQos q = cluster_qos();
  Json qj = Json::object();
  qj["broadcasts"] = q.broadcasts;
  qj["deliveries_matched"] = q.deliveries_matched;
  qj["latency_ms_mean"] = q.latency_ms_mean;
  qj["latency_ms_p50"] = q.latency_ms_p50;
  qj["latency_ms_p99"] = q.latency_ms_p99;
  qj["latency_ms_max"] = q.latency_ms_max;
  j["cluster_qos"] = std::move(qj);
  return j;
}

}  // namespace hds::obs
