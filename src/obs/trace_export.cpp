#include "obs/trace_export.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/causal.h"

namespace hds::obs {

namespace {

void json_escape_to(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf] << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

// Event name shown on the timeline: the kind, qualified by the message type
// where one exists ("deliver PH1" reads better than bare "deliver").
std::string event_name(const TraceEvent& e) {
  std::string name = TraceEvent::kind_name(e.kind);
  if (!e.msg_type.empty()) {
    name += ' ';
    name += e.msg_type;
  }
  return name;
}

void causal_str_to(std::ostream& os, std::uint64_t id) {
  os << causal_node_of(id) << ':' << causal_seq_of(id);
}

// One trace record at (pid, tid, ts µs). Plain events stay instants; events
// carrying a lineage id become 1µs duration anchors (flow arrows need an
// enclosing slice to terminate on) with flow companions: a broadcast opens
// the arrow under its lineage id, a delivery closes it — across pids too,
// which is what draws send->recv arrows between process lanes in a merged
// cluster trace.
void write_event_at(std::ostream& os, const TraceEvent& e, std::uint64_t pid, std::uint64_t tid,
                    std::int64_t ts) {
  os << "{\"name\":\"";
  json_escape_to(os, event_name(e));
  os << "\",\"cat\":\"" << TraceEvent::kind_name(e.kind);
  if (e.causal_id == 0) {
    os << "\",\"ph\":\"i\",\"s\":\"t\"";
  } else {
    os << "\",\"ph\":\"X\",\"dur\":1";
  }
  os << ",\"ts\":" << ts << ",\"pid\":" << pid << ",\"tid\":" << tid;
  if (!e.msg_type.empty() || e.causal_id != 0) {
    os << ",\"args\":{";
    bool comma = false;
    if (!e.msg_type.empty()) {
      os << "\"type\":\"";
      json_escape_to(os, e.msg_type);
      os << '"';
      comma = true;
    }
    if (e.causal_id != 0) {
      if (comma) os << ',';
      os << "\"causal\":\"";
      causal_str_to(os, e.causal_id);
      os << '"';
      if (e.causal_parent != 0) {
        os << ",\"parent\":\"";
        causal_str_to(os, e.causal_parent);
        os << '"';
      }
    }
    os << '}';
  }
  os << '}';
  // Lineage ids can exceed 2^53 (node index in the high bits), so flow ids
  // go out as strings — the trace importers hash them.
  if (e.causal_id != 0 && e.kind == TraceEvent::Kind::kBroadcast) {
    os << ",\n{\"name\":\"msg\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":\"";
    causal_str_to(os, e.causal_id);
    os << "\",\"ts\":" << ts << ",\"pid\":" << pid << ",\"tid\":" << tid << '}';
  }
  if (e.causal_id != 0 && e.kind == TraceEvent::Kind::kDeliver) {
    os << ",\n{\"name\":\"msg\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\"id\":\"";
    causal_str_to(os, e.causal_id);
    os << "\",\"ts\":" << ts << ",\"pid\":" << pid << ",\"tid\":" << tid << '}';
  }
}

}  // namespace

void write_chrome_trace(const std::vector<TraceEvent>& events, const TraceExportMeta& meta,
                        std::ostream& os) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  // Metadata: name the process row and one thread row per simulated process.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"hds run\"}}";
  first = false;
  for (std::size_t i = 0; i < meta.ids.size(); ++i) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << i
       << ",\"args\":{\"name\":\"p" << i << " id=" << meta.ids[i] << "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) os << ",\n";
    first = false;
    write_event_at(os, e, 0, e.proc, static_cast<std::int64_t>(e.at));
  }
  os << "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{\"event_count\":" << events.size()
     << ",\"dropped_events\":" << meta.dropped << ",\"label\":\"";
  json_escape_to(os, meta.label);
  os << "\"}}\n";
}

void write_trace_jsonl(const std::vector<TraceEvent>& events, const TraceExportMeta& meta,
                       std::ostream& os) {
  // Header line carries the run-level accounting so a stream consumer can
  // tell a partial window from a complete one.
  os << "{\"meta\":{\"event_count\":" << events.size() << ",\"dropped_events\":" << meta.dropped
     << ",\"label\":\"";
  json_escape_to(os, meta.label);
  os << "\"}}\n";
  for (const TraceEvent& e : events) {
    os << "{\"at\":" << e.at << ",\"kind\":\"" << TraceEvent::kind_name(e.kind)
       << "\",\"proc\":" << e.proc;
    if (!e.msg_type.empty()) {
      os << ",\"type\":\"";
      json_escape_to(os, e.msg_type);
      os << '"';
    }
    if (e.causal_id != 0) {
      os << ",\"causal\":\"";
      causal_str_to(os, e.causal_id);
      os << '"';
      if (e.causal_parent != 0) {
        os << ",\"parent\":\"";
        causal_str_to(os, e.causal_parent);
        os << '"';
      }
    }
    os << "}\n";
  }
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events, const TraceExportMeta& meta) {
  std::ostringstream os;
  write_chrome_trace(events, meta, os);
  return os.str();
}

std::string trace_jsonl(const std::vector<TraceEvent>& events, const TraceExportMeta& meta) {
  std::ostringstream os;
  write_trace_jsonl(events, meta, os);
  return os.str();
}

void write_merged_chrome_trace(const std::vector<NodeTrace>& nodes, const std::string& label,
                               std::ostream& os) {
  // Clock alignment: the earliest node epoch becomes t = 0 of the merged
  // timeline; every node's local milliseconds are offset by how much later
  // its clock started.
  std::int64_t min_epoch = 0;
  if (!nodes.empty()) {
    min_epoch = nodes.front().epoch_wall_us;
    for (const NodeTrace& nt : nodes) min_epoch = std::min(min_epoch, nt.epoch_wall_us);
  }
  os << "{\"traceEvents\":[\n";
  bool first = true;
  std::size_t event_count = 0;
  std::uint64_t dropped = 0;
  for (const NodeTrace& nt : nodes) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << nt.node
       << ",\"tid\":0,\"args\":{\"name\":\"node " << nt.node << " id=" << nt.id << "\"}}";
    os << ",\n{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" << nt.node
       << ",\"tid\":0,\"args\":{\"sort_index\":" << nt.node << "}}";
  }
  for (const NodeTrace& nt : nodes) {
    const std::int64_t offset_us = nt.epoch_wall_us - min_epoch;
    for (const TraceEvent& e : nt.events) {
      os << ",\n";
      write_event_at(os, e, nt.node, e.proc,
                     offset_us + static_cast<std::int64_t>(e.at) * 1000);
      ++event_count;
    }
    dropped += nt.dropped;
  }
  os << "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{\"event_count\":" << event_count
     << ",\"dropped_events\":" << dropped << ",\"node_count\":" << nodes.size()
     << ",\"dropped_by_node\":[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i != 0) os << ',';
    os << nodes[i].dropped;
  }
  os << "],\"label\":\"";
  json_escape_to(os, label);
  os << "\"}}\n";
}

std::string merged_chrome_trace_json(const std::vector<NodeTrace>& nodes,
                                     const std::string& label) {
  std::ostringstream os;
  write_merged_chrome_trace(nodes, label, os);
  return os.str();
}

}  // namespace hds::obs
