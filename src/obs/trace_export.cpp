#include "obs/trace_export.h"

#include <ostream>
#include <sstream>

namespace hds::obs {

namespace {

void json_escape_to(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf] << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

// Event name shown on the timeline: the kind, qualified by the message type
// where one exists ("deliver PH1" reads better than bare "deliver").
std::string event_name(const TraceEvent& e) {
  std::string name = TraceEvent::kind_name(e.kind);
  if (!e.msg_type.empty()) {
    name += ' ';
    name += e.msg_type;
  }
  return name;
}

}  // namespace

void write_chrome_trace(const std::vector<TraceEvent>& events, const TraceExportMeta& meta,
                        std::ostream& os) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  // Metadata: name the process row and one thread row per simulated process.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"hds run\"}}";
  first = false;
  for (std::size_t i = 0; i < meta.ids.size(); ++i) {
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << i
       << ",\"args\":{\"name\":\"p" << i << " id=" << meta.ids[i] << "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"";
    json_escape_to(os, event_name(e));
    os << "\",\"cat\":\"" << TraceEvent::kind_name(e.kind) << "\",\"ph\":\"i\",\"s\":\"t\""
       << ",\"ts\":" << e.at << ",\"pid\":0,\"tid\":" << e.proc;
    if (!e.msg_type.empty()) {
      os << ",\"args\":{\"type\":\"";
      json_escape_to(os, e.msg_type);
      os << "\"}";
    }
    os << '}';
  }
  os << "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{\"event_count\":" << events.size()
     << ",\"dropped_events\":" << meta.dropped << ",\"label\":\"";
  json_escape_to(os, meta.label);
  os << "\"}}\n";
}

void write_trace_jsonl(const std::vector<TraceEvent>& events, const TraceExportMeta& meta,
                       std::ostream& os) {
  // Header line carries the run-level accounting so a stream consumer can
  // tell a partial window from a complete one.
  os << "{\"meta\":{\"event_count\":" << events.size() << ",\"dropped_events\":" << meta.dropped
     << ",\"label\":\"";
  json_escape_to(os, meta.label);
  os << "\"}}\n";
  for (const TraceEvent& e : events) {
    os << "{\"at\":" << e.at << ",\"kind\":\"" << TraceEvent::kind_name(e.kind)
       << "\",\"proc\":" << e.proc;
    if (!e.msg_type.empty()) {
      os << ",\"type\":\"";
      json_escape_to(os, e.msg_type);
      os << '"';
    }
    os << "}\n";
  }
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events, const TraceExportMeta& meta) {
  std::ostringstream os;
  write_chrome_trace(events, meta, os);
  return os.str();
}

std::string trace_jsonl(const std::vector<TraceEvent>& events, const TraceExportMeta& meta) {
  std::ostringstream os;
  write_trace_jsonl(events, meta, os);
  return os.str();
}

}  // namespace hds::obs
