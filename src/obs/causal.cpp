#include "obs/causal.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace hds::obs {

namespace {

bool is_creator(const TraceEvent& e) {
  using K = TraceEvent::Kind;
  return e.kind == K::kStart || e.kind == K::kBroadcast || e.kind == K::kTimer;
}

}  // namespace

std::string causal_id_str(std::uint64_t id) {
  std::ostringstream os;
  os << causal_node_of(id) << ":" << causal_seq_of(id);
  return os.str();
}

std::vector<TraceEvent> causal_chain(const std::vector<TraceEvent>& events, std::uint64_t leaf_id,
                                     std::size_t max_links) {
  // Map each minted id to its creator event. Later records win so a ring
  // that wrapped mid-run still resolves the ids it retained.
  std::unordered_map<std::uint64_t, const TraceEvent*> creators;
  creators.reserve(events.size());
  for (const TraceEvent& e : events) {
    if (e.causal_id != 0 && is_creator(e)) creators[e.causal_id] = &e;
  }

  std::vector<TraceEvent> chain;
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t id = leaf_id;
  std::size_t links = 0;
  while (id != 0 && links < max_links && seen.insert(id).second) {
    const auto it = creators.find(id);
    if (it == creators.end()) break;  // evicted from the ring: truncated chain
    const TraceEvent& e = *it->second;
    // A run of consecutive same-process timer re-arms (a guard poll spinning
    // on an unmet condition) counts as one link: the interesting ancestry is
    // on the far side of the spin, and the formatter collapses the run to a
    // single line anyway. The seen-set still bounds the walk by the log.
    const bool continues_spin = !chain.empty() && e.kind == TraceEvent::Kind::kTimer &&
                                chain.back().kind == TraceEvent::Kind::kTimer &&
                                chain.back().proc == e.proc;
    if (!continues_spin) ++links;
    chain.push_back(e);
    id = e.causal_parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::uint64_t causal_chain_target(const std::vector<TraceEvent>& events) {
  using K = TraceEvent::Kind;
  // Prefer the last monitor violation; its causal_id is the lineage of the
  // event that tripped the rule.
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    if (it->kind == K::kMonitorViolation && it->causal_id != 0) return it->causal_id;
  }
  // Otherwise the last delivery: the newest message the system actually
  // consumed, i.e. the frontier it was last making (or failing to make)
  // progress on. Preferred over the last timer because a wedged run's tail
  // is all guard-poll re-arms, which carry no message ancestry.
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    if (it->kind == K::kDeliver && it->causal_id != 0) return it->causal_id;
  }
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    if (it->kind == K::kTimer && it->causal_id != 0) return it->causal_id;
  }
  return 0;
}

std::string format_causal_chain(const std::vector<TraceEvent>& chain) {
  std::ostringstream os;
  std::size_t i = 0;
  while (i < chain.size()) {
    const TraceEvent& e = chain[i];
    // Collapse a run of consecutive timer re-arms on one process (a guard
    // poll spinning on an unmet condition) into a single line.
    std::size_t run = 1;
    if (e.kind == TraceEvent::Kind::kTimer) {
      while (i + run < chain.size() && chain[i + run].kind == TraceEvent::Kind::kTimer &&
             chain[i + run].proc == e.proc) {
        ++run;
      }
    }
    const TraceEvent& last = chain[i + run - 1];
    os << "t" << last.at << " p" << last.proc << " " << TraceEvent::kind_name(last.kind);
    if (!last.msg_type.empty()) os << " " << last.msg_type;
    if (run > 1) os << " x" << run << " (t" << e.at << "..t" << last.at << ")";
    os << " id=" << causal_id_str(last.causal_id);
    if (run == 1 && e.causal_parent != 0) os << " <- " << causal_id_str(e.causal_parent);
    os << "\n";
    i += run;
  }
  return os.str();
}

}  // namespace hds::obs
