// Failure-detector quality-of-service analyzer.
//
// Chen/Toueg-style QoS metrics ("On the quality of service of failure
// detectors") adapted to homonymy: the analyzer consumes the run's ground
// truth (identities, crash schedule, GST) together with the per-process FD
// output trajectories and computes, offline, how *well* the detectors
// tracked reality — not merely whether the paper's eventual properties held
// (that is the spec checkers' job), but how fast and how cleanly.
//
//  - Detection time, per crashed label: with homonyms, the k-th crash among
//    the carriers of identifier x is detected by an observer once its
//    h_trusted multiplicity of x drops *permanently* to at most
//    mult_I(x) - k. The latency of that (observer, label, k) triple is the
//    instant of the permanent drop minus the crash instant; a final
//    multiplicity still above the threshold means the crash was never
//    detected (latency -1).
//  - Mistake rate and duration, for ◇HP̄ outputs: a mistake is any instant
//    at which some correct instance is missing from h_trusted
//    (I(Correct) ⊄ output) — the homonymous counterpart of wrongly
//    suspecting a correct process. Measured after GST as maximal mistake
//    intervals.
//  - HΩ leader stability: output changes after GST (flaps), the instant the
//    output last changed relative to GST (settle time), and whether all
//    correct observers agree on a final (leader, multiplicity) naming a
//    correct label.
//  - HΣ quorum intersection margin: the smallest |q ∩ q'| over realized
//    quorum pairs across correct observers (self-pairs included, so the
//    series is never empty when any quorum exists; 0 would witness an HΣ
//    safety violation). Plus the liveness wait: when each correct observer
//    first held a quorum within I(Correct).
//
// The report is a value type: emit_qos() projects it into a
// MetricsRegistry under qos_* series, qos_json() into a JSON document for
// the report CLI. Like the spec checkers, this is observer-side machinery —
// it reads trajectories after the run and feeds nothing back.
#pragma once

#include <vector>

#include "common/multiset.h"
#include "common/trajectory.h"
#include "common/types.h"
#include "fd/ground_truth.h"
#include "fd/interfaces.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace hds::obs {

struct QosInput {
  GroundTruth gt;
  // Per-process crash instant; -1 for processes that never crash. For
  // lock-step (SyncSystem) runs, the step number serves as the instant.
  std::vector<SimTime> crash_at;
  // Stabilization reference: detection/mistake/leader metrics are measured
  // from here (the network's GST under partial synchrony, 0 otherwise).
  SimTime gst = 0;
  SimTime run_end = 0;
  // Per-process output trajectories, indexed like gt.ids. A family that the
  // stack does not produce stays empty; individual entries may be null.
  std::vector<const Trajectory<Multiset<Id>>*> trusted;      // ◇HP̄
  std::vector<const Trajectory<HOmegaOut>*> homega;          // HΩ
  std::vector<const Trajectory<HSigmaSnapshot>*> hsigma;     // HΣ
};

// One (observer, crashed label, k-th crash of that label) detection record.
struct QosDetection {
  ProcIndex observer = 0;
  Id label = kBottomId;
  std::size_t kth = 1;          // 1-based among this label's crashes, by time
  SimTime crash_time = 0;
  SimTime latency = -1;         // -1: never permanently detected
};

struct QosMistakes {
  ProcIndex observer = 0;
  std::size_t intervals = 0;    // maximal mistake intervals after GST
  SimTime total_duration = 0;
  SimTime max_duration = 0;
};

struct QosLeader {
  ProcIndex observer = 0;
  std::size_t flaps_post_gst = 0;
  SimTime settle_time = 0;      // last output change relative to GST (>= 0)
  Id final_leader = kBottomId;
  std::size_t final_multiplicity = 0;
};

// Minimum intersection margin over realized quorum pairs of two observers.
struct QosQuorumPair {
  ProcIndex a = 0;
  ProcIndex b = 0;
  std::size_t margin = 0;
};

struct QosReport {
  SimTime gst = 0;
  SimTime run_end = 0;
  bool has_trusted = false;
  bool has_homega = false;
  bool has_hsigma = false;

  std::vector<QosDetection> detections;
  std::vector<QosMistakes> mistakes;
  std::vector<QosLeader> leaders;
  std::vector<QosQuorumPair> quorum_margins;
  std::vector<SimTime> liveness_waits;  // per correct observer; -1 = never

  // Aggregates over the records above (the regression-tracked scalars).
  SimTime detection_time_max = -1;      // -1: no detected crash
  double detection_time_mean = 0;
  std::size_t undetected = 0;
  std::size_t mistake_intervals = 0;
  SimTime mistake_duration_max = 0;
  std::size_t leader_flaps = 0;
  SimTime leader_settle_max = -1;       // -1: no HΩ observer
  bool converged = false;               // all correct observers agree on a
                                        // final correct leader
  std::ptrdiff_t quorum_margin_min = -1;  // -1: no realized quorum pair
  std::size_t quora_distinct = 0;
  SimTime liveness_wait_max = -1;       // -1: some observer never live
};

QosReport analyze_qos(const QosInput& in);

// Projects the report into qos_* series: qos_detection_time /
// qos_liveness_wait (latency_buckets histograms), qos_mistake_duration
// (time_buckets), qos_quorum_margin (size_buckets), counters
// qos_detection_undetected_total / qos_mistake_intervals_total /
// qos_leader_flaps_total, gauges qos_leader_settle_time /
// qos_quorum_margin_min / qos_quora_distinct / qos_converged. Null is a
// no-op.
void emit_qos(const QosReport& r, MetricsRegistry* reg);

// Full report as a JSON object (scalars plus per-record arrays).
Json qos_json(const QosReport& r);

}  // namespace hds::obs
