// Trace exporters: turn a recorded TraceLog window into
//  - Chrome trace-event JSON ("trace.json"), loadable in chrome://tracing
//    and Perfetto: one pid for the run, one tid per process (named with its
//    homonymous identifier), instant events per trace record, and
//    dropped-event accounting in otherData. Events that carry a lineage id
//    become 1µs duration anchors with flow begin/end companions, so every
//    broadcast draws an arrow to each of its deliveries;
//  - a JSONL stream (one event object per line), the machine-friendly form
//    for ad-hoc analysis (jq, pandas);
//  - a merged multi-process Chrome trace (one pid per cluster node, local
//    millisecond clocks rebased onto a shared wall-clock timeline), the
//    output of the hds_cluster telemetry plane.
//
// Exporters work from the materialized event vector (TraceLog::events() or
// ConsensusRunResult::trace_events) so they can run after the System that
// produced the log is gone.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/tracelog.h"

namespace hds::obs {

struct TraceExportMeta {
  std::vector<Id> ids;         // ids[i] names thread i; may be empty
  std::uint64_t dropped = 0;   // ring evictions (TraceLog::dropped())
  std::string label;           // free-form run description
};

// Chrome trace-event format (JSON object form). SimTime ticks map 1:1 to
// microseconds — the unit chrome://tracing displays natively.
void write_chrome_trace(const std::vector<TraceEvent>& events, const TraceExportMeta& meta,
                        std::ostream& os);

// One JSON object per line: {"at":..., "kind":"...", "proc":..., "type":"..."}.
void write_trace_jsonl(const std::vector<TraceEvent>& events, const TraceExportMeta& meta,
                       std::ostream& os);

[[nodiscard]] std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                                            const TraceExportMeta& meta);
[[nodiscard]] std::string trace_jsonl(const std::vector<TraceEvent>& events,
                                      const TraceExportMeta& meta);

// One cluster node's contribution to a merged trace: its local event window
// plus the wall-clock instant its local clock started (NetSystem::
// epoch_wall_us), which anchors the rebase onto the shared timeline.
struct NodeTrace {
  ProcIndex node = 0;               // cluster index; becomes the merged pid
  Id id = 0;                        // homonymous identity (lane label)
  std::int64_t epoch_wall_us = 0;   // wall clock at local t = 0
  std::uint64_t dropped = 0;        // ring evictions at this node
  std::vector<TraceEvent> events;   // `at` in local milliseconds
};

// Merged cluster trace: one Chrome pid per node, event timestamps rebased to
// `(epoch_wall_us - min(epoch_wall_us)) + at*1000` µs, flow arrows crossing
// process lanes wherever a lineage id was broadcast on one node and
// delivered on another.
void write_merged_chrome_trace(const std::vector<NodeTrace>& nodes, const std::string& label,
                               std::ostream& os);
[[nodiscard]] std::string merged_chrome_trace_json(const std::vector<NodeTrace>& nodes,
                                                   const std::string& label);

}  // namespace hds::obs
