// Trace exporters: turn a recorded TraceLog window into
//  - Chrome trace-event JSON ("trace.json"), loadable in chrome://tracing
//    and Perfetto: one pid for the run, one tid per process (named with its
//    homonymous identifier), instant events per trace record, and
//    dropped-event accounting in otherData;
//  - a JSONL stream (one event object per line), the machine-friendly form
//    for ad-hoc analysis (jq, pandas).
//
// Exporters work from the materialized event vector (TraceLog::events() or
// ConsensusRunResult::trace_events) so they can run after the System that
// produced the log is gone.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/tracelog.h"

namespace hds::obs {

struct TraceExportMeta {
  std::vector<Id> ids;         // ids[i] names thread i; may be empty
  std::uint64_t dropped = 0;   // ring evictions (TraceLog::dropped())
  std::string label;           // free-form run description
};

// Chrome trace-event format (JSON object form). SimTime ticks map 1:1 to
// microseconds — the unit chrome://tracing displays natively.
void write_chrome_trace(const std::vector<TraceEvent>& events, const TraceExportMeta& meta,
                        std::ostream& os);

// One JSON object per line: {"at":..., "kind":"...", "proc":..., "type":"..."}.
void write_trace_jsonl(const std::vector<TraceEvent>& events, const TraceExportMeta& meta,
                       std::ostream& os);

[[nodiscard]] std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                                            const TraceExportMeta& meta);
[[nodiscard]] std::string trace_jsonl(const std::vector<TraceEvent>& events,
                                      const TraceExportMeta& meta);

}  // namespace hds::obs
