#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <unordered_map>

#include "obs/metrics.h"

namespace hds::obs {

namespace {

// Stack paths pack into a u64 key: 4 bits per level (kCount <= 15), level 0
// in the low nibble, a sentinel 0xF terminating shorter paths is not needed
// because depth rides in the top byte.
constexpr std::size_t kMaxDepth = 14;

[[nodiscard]] std::uint64_t path_key(const ProfSubsystem* stack, std::size_t depth) {
  std::uint64_t key = static_cast<std::uint64_t>(depth) << 56;
  for (std::size_t i = 0; i < depth; ++i) {
    key |= static_cast<std::uint64_t>(stack[i]) << (4 * i);
  }
  return key;
}

[[nodiscard]] std::vector<ProfSubsystem> path_unkey(std::uint64_t key) {
  const auto depth = static_cast<std::size_t>(key >> 56);
  std::vector<ProfSubsystem> out(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    out[i] = static_cast<ProfSubsystem>((key >> (4 * i)) & 0xF);
  }
  return out;
}

[[nodiscard]] std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

struct PathAcc {
  std::uint64_t calls = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t total_ns = 0;
};

}  // namespace

// Per-thread accumulation: a frame stack for open scopes and a path-keyed
// table. The table is read by Profiler::snapshot() while the owning thread
// may still be appending, so mutations and reads go through the buf mutex;
// the lock is uncontended on the hot path (snapshotting is rare).
struct ProfThreadBuf {
  struct Frame {
    ProfSubsystem subsys;
    std::uint64_t start_ns = 0;
    std::uint64_t child_ns = 0;
  };

  std::mutex mu;
  Frame frames[kMaxDepth + 1];
  std::size_t depth = 0;
  ProfSubsystem stack[kMaxDepth];
  std::unordered_map<std::uint64_t, PathAcc> paths;
  bool registered = false;

  ~ProfThreadBuf() { Profiler::instance().retire_buf(this); }
};

namespace {
thread_local ProfThreadBuf t_buf;
}  // namespace

std::atomic<bool> Profiler::enabled_{false};

Profiler& Profiler::instance() {
  // Intentionally leaked: thread_local buffers retire themselves through the
  // singleton at thread exit, which for the main thread can run after
  // function-static destructors.
  static Profiler* p = new Profiler();
  return *p;
}

const char* prof_subsystem_name(ProfSubsystem s) {
  switch (s) {
    case ProfSubsystem::kEventQueue:
      return "event_queue";
    case ProfSubsystem::kFdStep:
      return "fd_step";
    case ProfSubsystem::kCodecEncode:
      return "codec_encode";
    case ProfSubsystem::kCodecDecode:
      return "codec_decode";
    case ProfSubsystem::kUdpSend:
      return "udp_send";
    case ProfSubsystem::kUdpRecv:
      return "udp_recv";
    case ProfSubsystem::kMonitor:
      return "monitor";
    case ProfSubsystem::kTraceStamp:
      return "trace_stamp";
    case ProfSubsystem::kAdmin:
      return "admin";
    case ProfSubsystem::kCount:
      break;
  }
  return "?";
}

void Profiler::scope_begin(ProfSubsystem s) {
  ProfThreadBuf& b = t_buf;
  if (!b.registered) {
    b.registered = true;
    instance().register_buf(&b);
  }
  std::lock_guard lk(b.mu);
  if (b.depth >= kMaxDepth) return;  // saturate rather than corrupt the key
  b.frames[b.depth] = ProfThreadBuf::Frame{s, now_ns(), 0};
  b.stack[b.depth] = s;
  ++b.depth;
}

void Profiler::scope_end() {
  ProfThreadBuf& b = t_buf;
  std::lock_guard lk(b.mu);
  if (b.depth == 0) return;
  --b.depth;
  const ProfThreadBuf::Frame& f = b.frames[b.depth];
  const std::uint64_t elapsed = now_ns() - f.start_ns;
  PathAcc& acc = b.paths[path_key(b.stack, b.depth + 1)];
  ++acc.calls;
  acc.total_ns += elapsed;
  acc.self_ns += elapsed > f.child_ns ? elapsed - f.child_ns : 0;
  if (b.depth > 0) b.frames[b.depth - 1].child_ns += elapsed;
}

void Profiler::register_buf(ProfThreadBuf* b) {
  std::lock_guard lk(mu_);
  bufs_.push_back(b);
}

void Profiler::retire_buf(ProfThreadBuf* b) {
  std::lock_guard lk(mu_);
  bufs_.erase(std::remove(bufs_.begin(), bufs_.end(), b), bufs_.end());
  std::lock_guard blk(b->mu);
  for (const auto& [key, acc] : b->paths) {
    ProfPath& p = retired_[key];
    if (p.stack.empty()) p.stack = path_unkey(key);
    p.calls += acc.calls;
    p.self_ns += acc.self_ns;
    p.total_ns += acc.total_ns;
  }
}

void Profiler::reset() {
  std::lock_guard lk(mu_);
  retired_.clear();
  for (ProfThreadBuf* b : bufs_) {
    std::lock_guard blk(b->mu);
    b->paths.clear();
  }
}

std::vector<ProfPath> Profiler::snapshot() const {
  std::map<std::uint64_t, ProfPath> merged;
  {
    std::lock_guard lk(mu_);
    merged = retired_;
    for (ProfThreadBuf* b : bufs_) {
      std::lock_guard blk(b->mu);
      for (const auto& [key, acc] : b->paths) {
        ProfPath& p = merged[key];
        if (p.stack.empty()) p.stack = path_unkey(key);
        p.calls += acc.calls;
        p.self_ns += acc.self_ns;
        p.total_ns += acc.total_ns;
      }
    }
  }
  std::vector<ProfPath> out;
  out.reserve(merged.size());
  for (auto& [key, p] : merged) {
    (void)key;
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(),
            [](const ProfPath& a, const ProfPath& b) { return a.total_ns > b.total_ns; });
  return out;
}

std::string Profiler::collapsed_stacks(const std::string& root) const {
  std::vector<std::string> lines;
  for (const ProfPath& p : snapshot()) {
    std::ostringstream os;
    os << root;
    for (const ProfSubsystem s : p.stack) os << ';' << prof_subsystem_name(s);
    os << ' ' << p.self_ns;
    lines.push_back(os.str());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

void Profiler::emit(MetricsRegistry* reg) const {
  if (reg == nullptr) return;
  std::uint64_t self_ns[static_cast<std::size_t>(ProfSubsystem::kCount)] = {};
  std::uint64_t calls[static_cast<std::size_t>(ProfSubsystem::kCount)] = {};
  for (const ProfPath& p : snapshot()) {
    const auto leaf = static_cast<std::size_t>(p.stack.back());
    self_ns[leaf] += p.self_ns;
    calls[leaf] += p.calls;
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(ProfSubsystem::kCount); ++i) {
    if (calls[i] == 0) continue;
    const Labels labels{{"subsys", prof_subsystem_name(static_cast<ProfSubsystem>(i))}};
    reg->counter("prof_self_ns_total", labels).inc(self_ns[i]);
    reg->counter("prof_calls_total", labels).inc(calls[i]);
  }
}

}  // namespace hds::obs
