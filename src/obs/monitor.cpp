#include "obs/monitor.h"

#include "obs/profiler.h"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace hds::obs {

OnlineMonitor::OnlineMonitor(MonitorConfig cfg)
    : cfg_(std::move(cfg)), correct_ids_(cfg_.gt.correct_ids()) {
  proxies_.reserve(cfg_.gt.n());
  for (ProcIndex i = 0; i < cfg_.gt.n(); ++i) {
    auto proxy = std::make_unique<ProcListener>();
    proxy->owner = this;
    proxy->proc = i;
    proxies_.push_back(std::move(proxy));
  }
}

FdOutputListener* OnlineMonitor::listener(ProcIndex i) {
  if (i >= proxies_.size()) throw std::out_of_range("OnlineMonitor::listener: bad proc index");
  return proxies_[i].get();
}

std::vector<MonitorEvent> OnlineMonitor::events() const {
  std::lock_guard lk(mu_);
  return events_;
}

std::size_t OnlineMonitor::violation_count() const {
  std::lock_guard lk(mu_);
  return violations_;
}

std::size_t OnlineMonitor::warning_count() const {
  std::lock_guard lk(mu_);
  return warnings_;
}

std::map<std::string, std::size_t> OnlineMonitor::counts_by_rule() const {
  std::lock_guard lk(mu_);
  std::map<std::string, std::size_t> out;
  for (const MonitorEvent& e : events_) ++out[e.rule];
  return out;
}

std::uint64_t OnlineMonitor::dropped() const {
  std::lock_guard lk(mu_);
  return dropped_;
}

void OnlineMonitor::emit(SimTime at, MonitorEvent::Severity sev, ProcIndex p, const char* rule,
                         std::string detail) {
  (sev == MonitorEvent::Severity::kViolation ? violations_ : warnings_)++;
  if (cfg_.metrics != nullptr) {
    cfg_.metrics
        ->counter("monitor_events_total",
                  {{"severity",
                    sev == MonitorEvent::Severity::kViolation ? "violation" : "warning"},
                   {"rule", rule}})
        .inc();
  }
  if (cfg_.trace != nullptr) {
    // The mirrored event carries the lineage of whatever the dispatch loop
    // was delivering when the rule fired (0 when no causal session is wired).
    const std::uint64_t lineage = cfg_.causal != nullptr ? cfg_.causal->parent : 0;
    cfg_.trace->record(at,
                       sev == MonitorEvent::Severity::kViolation
                           ? TraceEvent::Kind::kMonitorViolation
                           : TraceEvent::Kind::kMonitorWarn,
                       p, rule + std::string(": ") + detail, lineage);
  }
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(MonitorEvent{at, sev, p, rule, std::move(detail)});
}

void OnlineMonitor::trusted_changed(ProcIndex p, SimTime at, const Multiset<Id>& m) {
  HDS_PROF_SCOPE(ProfSubsystem::kMonitor);
  if (at < cfg_.watch_from) return;
  std::lock_guard lk(mu_);
  if (!correct_ids_.is_subset_of(m)) {
    std::ostringstream os;
    os << "h_trusted " << m << " misses a correct instance of " << correct_ids_;
    emit(at, MonitorEvent::Severity::kViolation, p, "suspect-correct", os.str());
  } else {
    std::ostringstream os;
    os << "h_trusted changed to " << m << " after watch_from";
    emit(at, MonitorEvent::Severity::kWarning, p, "late-change", os.str());
  }
}

void OnlineMonitor::homega_changed(ProcIndex p, SimTime at, const HOmegaOut& out) {
  HDS_PROF_SCOPE(ProfSubsystem::kMonitor);
  if (at < cfg_.watch_from) return;
  std::lock_guard lk(mu_);
  {
    std::ostringstream os;
    os << "leader changed to (" << out.leader << ", " << out.multiplicity
       << ") after watch_from";
    emit(at, MonitorEvent::Severity::kViolation, p, "leader-flap", os.str());
  }
  if (!correct_ids_.contains(out.leader)) {
    std::ostringstream os;
    os << "leader " << out.leader << " is carried by no correct process";
    emit(at, MonitorEvent::Severity::kWarning, p, "dead-leader", os.str());
  }
}

void OnlineMonitor::hsigma_changed(ProcIndex p, SimTime at, const HSigmaSnapshot& snap) {
  HDS_PROF_SCOPE(ProfSubsystem::kMonitor);
  // Quorum intersection is safety: judged from t = 0, not gated.
  std::lock_guard lk(mu_);
  for (const auto& [x, q] : snap.quora) {
    (void)x;
    if (seen_quora_.contains(q)) continue;
    // Compare the new quorum against every distinct quorum realized so far
    // (any process, any time) — the HΣ intersection property quantifies
    // over exactly those pairs.
    std::ptrdiff_t min_margin = static_cast<std::ptrdiff_t>(q.size());  // self-pair
    const Multiset<Id>* worst = &q;
    for (const Multiset<Id>& s : seen_quora_) {
      const auto margin = static_cast<std::ptrdiff_t>(q.intersection(s).size());
      if (margin < min_margin) {
        min_margin = margin;
        worst = &s;
      }
    }
    if (min_margin == 0) {
      std::ostringstream os;
      os << "quorum " << q << " is disjoint from realized quorum " << *worst;
      emit(at, MonitorEvent::Severity::kViolation, p, "quorum-disjoint", os.str());
    } else if (min_margin <= static_cast<std::ptrdiff_t>(cfg_.quorum_margin_warn)) {
      std::ostringstream os;
      os << "quorum " << q << " intersects " << *worst << " in only " << min_margin
         << " instance(s)";
      emit(at, MonitorEvent::Severity::kWarning, p, "quorum-margin", os.str());
    }
    seen_quora_.insert(q);
  }
}

void OnlineMonitor::sigma_changed(ProcIndex p, SimTime at, const Multiset<Id>& m) {
  HDS_PROF_SCOPE(ProfSubsystem::kMonitor);
  if (at < cfg_.watch_from) return;
  std::lock_guard lk(mu_);
  if (!m.is_subset_of(correct_ids_)) {
    std::ostringstream os;
    os << "trusted " << m << " contains a crashed instance (correct = " << correct_ids_ << ")";
    emit(at, MonitorEvent::Severity::kViolation, p, "sigma-trust-crashed", os.str());
  }
}

}  // namespace hds::obs
