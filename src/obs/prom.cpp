#include "obs/prom.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <tuple>
#include <utility>
#include <vector>

namespace hds::obs {

namespace {

void escape_label_to(std::ostream& os, const std::string& v) {
  for (const char c : v) {
    switch (c) {
      case '\\':
        os << "\\\\";
        break;
      case '"':
        os << "\\\"";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
}

void labels_to(std::ostream& os, const Labels& labels, const std::string& extra_key = "",
               const std::string& extra_val = "") {
  if (labels.empty() && extra_key.empty()) return;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << k << "=\"";
    escape_label_to(os, v);
    os << '"';
  }
  if (!extra_key.empty()) {
    if (!first) os << ',';
    os << extra_key << "=\"" << extra_val << '"';
  }
  os << '}';
}

void type_line(std::ostream& os, const std::string& name, const char* type,
               std::string& last_typed) {
  if (name == last_typed) return;
  last_typed = name;
  os << "# TYPE " << name << ' ' << type << '\n';
}

[[nodiscard]] bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    if (!alpha && (i == 0 || c < '0' || c > '9')) return false;
  }
  return true;
}

}  // namespace

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::ostringstream os;
  std::string last_typed;
  for (const auto& c : snap.counters) {
    type_line(os, c.name, "counter", last_typed);
    os << c.name;
    labels_to(os, c.labels);
    os << ' ' << c.value << '\n';
  }
  for (const auto& g : snap.gauges) {
    type_line(os, g.name, "gauge", last_typed);
    os << g.name;
    labels_to(os, g.labels);
    os << ' ' << g.value << '\n';
  }
  for (const auto& h : snap.histograms) {
    type_line(os, h.name, "histogram", last_typed);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cum += h.bucket_counts[i];
      os << h.name << "_bucket";
      if (i < h.bounds.size()) {
        labels_to(os, h.labels, "le", std::to_string(h.bounds[i]));
      } else {
        labels_to(os, h.labels, "le", "+Inf");
      }
      os << ' ' << cum << '\n';
    }
    os << h.name << "_sum";
    labels_to(os, h.labels);
    os << ' ' << h.sum << '\n';
    os << h.name << "_count";
    labels_to(os, h.labels);
    os << ' ' << h.count << '\n';
  }
  return os.str();
}

namespace {

struct Sample {
  std::string name;
  Labels labels;
  std::string le;  // only when an le label was present
  bool has_le = false;
  std::int64_t ivalue = 0;
  std::uint64_t uvalue = 0;
  bool negative = false;
};

[[nodiscard]] std::string parse_name(const std::string& s, std::size_t& i, std::size_t line) {
  const std::size_t start = i;
  while (i < s.size() &&
         ((s[i] >= 'a' && s[i] <= 'z') || (s[i] >= 'A' && s[i] <= 'Z') || s[i] == '_' ||
          (i > start && s[i] >= '0' && s[i] <= '9'))) {
    ++i;
  }
  if (i == start) throw PromParseError("expected a metric or label name", line);
  return s.substr(start, i - start);
}

[[nodiscard]] std::string parse_quoted(const std::string& s, std::size_t& i, std::size_t line) {
  if (i >= s.size() || s[i] != '"') throw PromParseError("expected '\"'", line);
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      ++i;
      if (i >= s.size()) throw PromParseError("dangling escape", line);
      switch (s[i]) {
        case '\\':
          out += '\\';
          break;
        case '"':
          out += '"';
          break;
        case 'n':
          out += '\n';
          break;
        default:
          throw PromParseError("unknown escape in label value", line);
      }
    } else {
      out += s[i];
    }
    ++i;
  }
  if (i >= s.size()) throw PromParseError("unterminated label value", line);
  ++i;  // closing quote
  return out;
}

[[nodiscard]] Sample parse_sample(const std::string& s, std::size_t line) {
  std::size_t i = 0;
  Sample out;
  out.name = parse_name(s, i, line);
  if (i < s.size() && s[i] == '{') {
    ++i;
    while (i < s.size() && s[i] != '}') {
      const std::string key = parse_name(s, i, line);
      if (i >= s.size() || s[i] != '=') throw PromParseError("expected '=' after label name", line);
      ++i;
      const std::string val = parse_quoted(s, i, line);
      if (key == "le") {
        if (out.has_le) throw PromParseError("duplicate le label", line);
        out.has_le = true;
        out.le = val;
      } else if (!out.labels.emplace(key, val).second) {
        throw PromParseError("duplicate label '" + key + "'", line);
      }
      if (i < s.size() && s[i] == ',') ++i;
    }
    if (i >= s.size()) throw PromParseError("unterminated label set", line);
    ++i;  // '}'
  }
  if (i >= s.size() || s[i] != ' ') throw PromParseError("expected ' ' before the value", line);
  ++i;
  if (i < s.size() && s[i] == '-') {
    out.negative = true;
    ++i;
  }
  const std::size_t digits = i;
  std::uint64_t v = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
    ++i;
  }
  if (i == digits || i != s.size()) {
    throw PromParseError("expected an integer value terminating the line", line);
  }
  out.uvalue = v;
  out.ivalue = out.negative ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v);
  return out;
}

struct HistAcc {
  std::vector<std::pair<std::string, std::uint64_t>> buckets;  // (le, cumulative)
  std::optional<std::int64_t> sum;
  std::optional<std::uint64_t> count;
  std::size_t line = 0;  // first line, for error messages
};

}  // namespace

MetricsSnapshot prometheus_parse(const std::string& text) {
  MetricsSnapshot out;
  std::string cur_name;
  std::string cur_type;
  std::map<std::pair<std::string, Labels>, HistAcc> hists;
  std::map<std::pair<std::string, Labels>, std::size_t> seen_scalars;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, (eol == std::string::npos ? text.size() : eol) - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash;
      std::string kw;
      std::string name;
      std::string type;
      ls >> hash >> kw >> name >> type;
      std::string rest;
      if (kw != "TYPE" || !(ls >> rest).eof() || !valid_name(name) ||
          (type != "counter" && type != "gauge" && type != "histogram")) {
        throw PromParseError("malformed # TYPE line", line_no);
      }
      cur_name = name;
      cur_type = type;
      continue;
    }
    if (cur_name.empty()) throw PromParseError("sample before any # TYPE line", line_no);
    const Sample s = parse_sample(line, line_no);
    if (cur_type == "counter" || cur_type == "gauge") {
      if (s.name != cur_name) throw PromParseError("sample does not match the # TYPE name", line_no);
      if (s.has_le) throw PromParseError("le label on a non-histogram series", line_no);
      if (!seen_scalars.emplace(std::make_pair(s.name, s.labels), line_no).second) {
        throw PromParseError("duplicate series", line_no);
      }
      if (cur_type == "counter") {
        if (s.negative) throw PromParseError("negative counter value", line_no);
        out.counters.push_back({s.name, s.labels, s.uvalue});
      } else {
        out.gauges.push_back({s.name, s.labels, s.ivalue});
      }
      continue;
    }
    // histogram
    HistAcc& acc = hists[{cur_name, s.labels}];
    if (acc.line == 0) acc.line = line_no;
    if (s.name == cur_name + "_bucket") {
      if (!s.has_le) throw PromParseError("histogram bucket without le", line_no);
      if (s.negative) throw PromParseError("negative bucket count", line_no);
      acc.buckets.emplace_back(s.le, s.uvalue);
    } else if (s.name == cur_name + "_sum") {
      if (s.has_le || acc.sum.has_value()) throw PromParseError("malformed _sum line", line_no);
      acc.sum = s.ivalue;
    } else if (s.name == cur_name + "_count") {
      if (s.has_le || acc.count.has_value() || s.negative) {
        throw PromParseError("malformed _count line", line_no);
      }
      acc.count = s.uvalue;
    } else {
      throw PromParseError("sample does not match the # TYPE name", line_no);
    }
  }

  for (auto& [key, acc] : hists) {
    MetricsSnapshot::HistogramSample h;
    h.name = key.first;
    h.labels = key.second;
    if (acc.buckets.empty() || acc.buckets.back().first != "+Inf") {
      throw PromParseError("histogram missing its +Inf bucket", acc.line);
    }
    if (!acc.sum.has_value() || !acc.count.has_value()) {
      throw PromParseError("histogram missing _sum or _count", acc.line);
    }
    std::uint64_t prev_cum = 0;
    std::optional<std::int64_t> prev_bound;
    for (std::size_t i = 0; i < acc.buckets.size(); ++i) {
      const auto& [le, cum] = acc.buckets[i];
      if (cum < prev_cum) throw PromParseError("non-cumulative bucket counts", acc.line);
      if (i + 1 < acc.buckets.size()) {
        char* end = nullptr;
        const long long b = std::strtoll(le.c_str(), &end, 10);
        if (le.empty() || end == nullptr || *end != '\0') {
          throw PromParseError("non-integer le bound", acc.line);
        }
        if (prev_bound.has_value() && b <= *prev_bound) {
          throw PromParseError("le bounds not ascending", acc.line);
        }
        prev_bound = b;
        h.bounds.push_back(b);
      }
      h.bucket_counts.push_back(cum - prev_cum);
      prev_cum = cum;
    }
    if (*acc.count != prev_cum) {
      throw PromParseError("_count disagrees with the +Inf bucket", acc.line);
    }
    h.count = *acc.count;
    h.sum = *acc.sum;
    out.histograms.push_back(std::move(h));
  }

  const auto by_key = [](const auto& a, const auto& b) {
    return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
  };
  std::sort(out.counters.begin(), out.counters.end(), by_key);
  std::sort(out.gauges.begin(), out.gauges.end(), by_key);
  std::sort(out.histograms.begin(), out.histograms.end(), by_key);
  return out;
}

}  // namespace hds::obs
