// Unified metrics layer shared by both substrates (sim::System and
// rt::RtSystem) and by the detector / consensus instruments.
//
// Design constraints, in order:
//  - zero cost when disabled: every instrumentation site holds a nullable
//    instrument pointer and goes through the obs::inc / obs::set /
//    obs::observe helpers, so a run without a registry pays one null check;
//  - safe under the thread runtime: instrument updates are relaxed atomics
//    (counters are monotonic aggregates, so relaxed ordering suffices);
//    instrument *creation* is mutex-guarded and returns stable references —
//    a registry never deletes or moves an instrument while alive;
//  - fixed bucket layouts: histograms are created with an explicit bound
//    vector (see time_buckets()/size_buckets()) so series are comparable
//    across runs and exporters need no merging logic;
//  - per-process labeled series: a label set {proc=3} distinguishes the
//    homonymous processes the way ProcIndex does in the ground truth —
//    labels are a formalization device of the observer, never visible to
//    the algorithms.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hds::obs {

// Label set attached to one series, e.g. {{"proc", "3"}, {"type", "PH1"}}.
using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void inc(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  // Monotone update, for high-water marks (e.g. last-output-change instants).
  void set_max(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed-layout histogram: `bounds` are inclusive upper bucket bounds in
// ascending order; one implicit overflow bucket catches everything above
// the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t v);

  [[nodiscard]] const std::vector<std::int64_t>& bounds() const { return bounds_; }
  // i in [0, bounds().size()]; the last index is the overflow bucket.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double mean() const {
    const std::uint64_t c = count();
    return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
  }

  // Quantile estimate (q in [0, 1]) from the fixed buckets, with linear
  // interpolation inside the selected bucket (Prometheus'
  // histogram_quantile rule). The first bucket interpolates from 0; a rank
  // that lands in the overflow bucket clamps to the last bound — the layout
  // cannot see further. Returns 0 on an empty histogram.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

// Power-of-two bounds lo, 2lo, 4lo, ... up to and including >= hi.
std::vector<std::int64_t> exp_buckets(std::int64_t lo, std::int64_t hi);
// lo, lo+step, ..., `count` bounds.
std::vector<std::int64_t> linear_buckets(std::int64_t lo, std::int64_t step, std::size_t count);

// Shared layouts. Times are simulated ticks (or milliseconds on the thread
// runtime); sizes are multiset / quorum cardinalities.
const std::vector<std::int64_t>& time_buckets();  // 1, 2, 4, ..., 65536
const std::vector<std::int64_t>& size_buckets();  // 1, 2, ..., 16, 32, 64
// Finer layout for latency-style series whose quantiles will be extracted:
// each power of two plus its midpoint (1, 2, 3, 4, 6, 8, 12, ..., 2^20), so
// an interpolated p95/p99 stays within ~25% of the true value.
const std::vector<std::int64_t>& latency_buckets();

// Point-in-time digest of one histogram, with bucket-estimated percentiles.
struct HistogramSummary {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

HistogramSummary summarize(const Histogram& h);

// Point-in-time copy of every series in a registry, decoupled from the
// registry's locks and lifetime — the input to the Prometheus renderer and
// anything else that walks all series (instrument reads are relaxed, so one
// snapshot is as consistent as any concurrent reader can be).
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    Labels labels;
    std::uint64_t value = 0;
    friend bool operator==(const CounterSample&, const CounterSample&) = default;
  };
  struct GaugeSample {
    std::string name;
    Labels labels;
    std::int64_t value = 0;
    friend bool operator==(const GaugeSample&, const GaugeSample&) = default;
  };
  struct HistogramSample {
    std::string name;
    Labels labels;
    std::vector<std::int64_t> bounds;
    std::vector<std::uint64_t> bucket_counts;  // bounds.size() + 1, last = overflow
    std::uint64_t count = 0;
    std::int64_t sum = 0;
    friend bool operator==(const HistogramSample&, const HistogramSample&) = default;
  };

  std::vector<CounterSample> counters;      // sorted by (name, labels)
  std::vector<GaugeSample> gauges;          // sorted by (name, labels)
  std::vector<HistogramSample> histograms;  // sorted by (name, labels)

  friend bool operator==(const MetricsSnapshot&, const MetricsSnapshot&) = default;
};

// Named, labeled instruments with stable addresses. counter()/gauge()/
// histogram() create on first use and return the same instrument for the
// same (name, labels) afterwards; references stay valid for the registry's
// lifetime, so hot paths cache the pointer once and never look up again.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  // `bounds` is honoured on first creation; later calls with the same
  // (name, labels) return the existing instrument (mirrors Prometheus'
  // fixed-layout rule: one layout per series).
  Histogram& histogram(const std::string& name, const std::vector<std::int64_t>& bounds,
                       const Labels& labels = {});

  // Lookup without creation; nullptr when the series does not exist.
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name, const Labels& labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name,
                                                const Labels& labels = {}) const;

  // Sum of every counter series with this name, across all label sets.
  [[nodiscard]] std::uint64_t counter_total(const std::string& name) const;

  [[nodiscard]] std::size_t series_count() const;

  [[nodiscard]] MetricsSnapshot snapshot() const;

  // Full snapshot as a JSON document:
  //   {"counters": [{"name", "labels", "value"}, ...],
  //    "gauges": [...],
  //    "histograms": [{"name", "labels", "count", "sum",
  //                    "buckets": [{"le": bound-or-null, "count"}, ...]}]}
  [[nodiscard]] std::string to_json() const;

 private:
  using Key = std::pair<std::string, Labels>;

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

// Null-safe update helpers: instrumentation sites hold nullable pointers
// (nullptr == observability disabled) and call these unconditionally.
inline void inc(Counter* c, std::uint64_t d = 1) {
  if (c != nullptr) c->inc(d);
}
inline void set(Gauge* g, std::int64_t v) {
  if (g != nullptr) g->set(v);
}
inline void set_max(Gauge* g, std::int64_t v) {
  if (g != nullptr) g->set_max(v);
}
inline void observe(Histogram* h, std::int64_t v) {
  if (h != nullptr) h->observe(v);
}

}  // namespace hds::obs
