// Prometheus text exposition (version 0.0.4) for MetricsRegistry snapshots,
// plus a strict parser for the same dialect.
//
// The renderer is the payload of the admin channel's STATS verb: one call
// turns a full registry snapshot (counters, gauges, fixed-layout histograms
// including the window-QoS gauges) into the text format every Prometheus
// scraper, including promtool, ingests directly. The parser exists for the
// round-trip guarantee — tests assert parse(render(snapshot)) == snapshot,
// so a rendering bug (bad escaping, non-cumulative buckets, missing +Inf)
// cannot ship silently — and doubles as hds_top's STATS decoder.
//
// Dialect restrictions, deliberate on both sides:
//  - values are integers (every instrument here is integral); the parser
//    rejects floats — a strict subset, still valid exposition text;
//  - histogram buckets render cumulatively with a final le="+Inf" bucket,
//    _sum and _count lines, per the format spec; the parser refolds them
//    into the registry's per-bucket layout and rejects non-monotone series;
//  - every series must be preceded by its # TYPE line; unknown line shapes
//    are errors, not skips.
#pragma once

#include <stdexcept>
#include <string>

#include "obs/metrics.h"

namespace hds::obs {

// Renders every series, grouped by name under one # TYPE comment, names and
// label sets in sorted order. Histograms expand to _bucket/_sum/_count.
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snap);

class PromParseError : public std::runtime_error {
 public:
  PromParseError(const std::string& what, std::size_t line)
      : std::runtime_error(what + " at line " + std::to_string(line)), line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

// Strict inverse of prometheus_text. Throws PromParseError on anything the
// renderer would not produce. The returned snapshot is sorted the same way
// MetricsRegistry::snapshot() sorts, so round-trip comparison is ==.
[[nodiscard]] MetricsSnapshot prometheus_parse(const std::string& text);

}  // namespace hds::obs
