// Causal context for distributed tracing: per-message lineage ids, a
// Lamport clock, and backwards chain extraction over a recorded event log.
//
// Every send site (broadcast, timer arm, process start) mints a fresh
// lineage id and stamps the id of the event being dispatched as its parent,
// which turns the trace log into a lineage DAG: any event can be explained
// by walking parent links back to a root (a process start). Lineage ids
// fold the minting node's cluster index into the high 16 bits so ids
// minted by different OS processes never collide in a merged trace.
//
// Stamping is instrumentation-only: it never consumes simulator RNG and is
// skipped entirely (no allocation, no counter traffic) when tracing is off,
// so schedules, metrics, and QoS are byte-identical with tracing on or off
// (pinned by engine_determinism_test).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/tracelog.h"

namespace hds::obs {

inline constexpr unsigned kCausalNodeShift = 48;

// Lineage-id layout: [node:16][sequence:48].
[[nodiscard]] constexpr std::uint64_t causal_node_base(std::uint64_t node) {
  return node << kCausalNodeShift;
}
[[nodiscard]] constexpr std::uint64_t causal_node_of(std::uint64_t id) {
  return id >> kCausalNodeShift;
}
[[nodiscard]] constexpr std::uint64_t causal_seq_of(std::uint64_t id) {
  return id & ((std::uint64_t{1} << kCausalNodeShift) - 1);
}

// Compact human form "node:seq" used by dumps and causal chains.
[[nodiscard]] std::string causal_id_str(std::uint64_t id);

// Per-dispatch causal state. One per serial dispatch context: the simulator
// owns one (single-threaded event loop), each net/rt node owns one (all
// handler dispatch happens on that node's thread). Not thread-safe.
struct CausalSession {
  std::uint64_t base = 0;    // causal_node_base(cluster node index)
  std::uint64_t next = 1;    // next sequence number to mint
  std::uint64_t parent = 0;  // lineage id of the event currently dispatching
  std::uint64_t clock = 0;   // Lamport clock

  // Mint a lineage id for a new send/timer/start event.
  [[nodiscard]] std::uint64_t fresh() { return base | next++; }
  // Lamport send rule: advance and return the stamped clock.
  std::uint64_t tick() { return ++clock; }
  // Lamport receive rule.
  void merge(std::uint64_t remote) { clock = (remote > clock ? remote : clock) + 1; }
};

// Walk the lineage graph backwards from `leaf_id`: for each id find the
// event that minted it (kStart / kBroadcast / kTimer with that causal_id)
// and follow its causal_parent. Returns the creator events oldest-first,
// ending with the leaf's creator. The walk stops at a root (parent 0), at
// `max_links` — a run of consecutive same-process timer re-arms (a guard
// poll spinning) counts as one link, matching the formatter's collapsing —
// on a cycle, or when the creator was evicted from a flight-recorder ring
// (the chain is then a truncated suffix).
[[nodiscard]] std::vector<TraceEvent> causal_chain(const std::vector<TraceEvent>& events,
                                                   std::uint64_t leaf_id,
                                                   std::size_t max_links = 64);

// Pick the chain target for a recorded run: the last monitor violation if
// any, else the last delivery (the newest message the system consumed —
// for a wedged run, the frontier of the quorum wait it was spinning on),
// else the last timer. Returns 0 if nothing is stamped.
[[nodiscard]] std::uint64_t causal_chain_target(const std::vector<TraceEvent>& events);

// Render a chain oldest-first, one link per line, collapsing consecutive
// same-process timer re-arms into one "timer xN" line so guard-poll spins
// stay readable. Lines look like:
//   t120 p2 broadcast PH1 id=0:17 <- 0:12
[[nodiscard]] std::string format_causal_chain(const std::vector<TraceEvent>& chain);

}  // namespace hds::obs
