// Cluster telemetry plane: the wire schema nodes use to stream trace/metric
// deltas to the launcher, and the merger that folds per-node streams into
// one cluster view.
//
// Transport is JSON datagrams ("hds-telemetry-v1") over the launcher's
// admin UDP channel — fire-and-forget, like the data plane itself. A node
// sends one delta right after the HELLO barrier (announcing its wall-clock
// epoch), periodic deltas while running (each carrying the trace events
// recorded since the last one, chunked so a delta fits a datagram), and a
// final flush (carrying the metrics snapshot) before exiting. Loss is
// tolerated: deltas carry per-node sequence numbers, so the merger can
// report how many went missing, and the trace ring's own dropped() count
// rides along.
//
// The merger rebases each node's local millisecond timestamps onto a shared
// timeline using the announced epochs (aligned_us = (epoch_wall_us -
// min(epoch_wall_us)) + at*1000), produces the NodeTrace set the merged
// Chrome exporter consumes, and computes cluster QoS — end-to-end detection
// latency — by matching each broadcast's lineage id against the deliveries
// that carried it on other nodes.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/json.h"
#include "obs/trace_export.h"
#include "sim/tracelog.h"

namespace hds::obs {

inline constexpr const char* kTelemetrySchema = "hds-telemetry-v1";

struct TelemetryDelta {
  ProcIndex node = 0;              // cluster index of the sender
  Id id = 0;                       // its homonymous identity
  std::uint64_t seq = 0;           // per-node delta sequence number (from 0)
  bool final_flush = false;        // last delta this node will send
  std::int64_t epoch_wall_us = 0;  // wall clock (µs since Unix epoch) at local t = 0
  SimTime hello_done_ms = -1;      // local time the HELLO barrier completed; -1 unknown
  std::uint16_t admin_port = 0;    // node's hds-admin-v1 UDP port; 0 = none announced
  std::uint64_t dropped = 0;       // trace-ring evictions so far at this node
  std::vector<TraceEvent> events;  // events recorded since the previous delta
  std::string metrics_json;        // metrics snapshot; only on the final flush
};

[[nodiscard]] Json telemetry_delta_to_json(const TelemetryDelta& d);
// Throws std::runtime_error on a schema mismatch or malformed fields.
[[nodiscard]] TelemetryDelta telemetry_delta_from_json(const Json& j);

// Splits an oversized delta into datagram-sized chunks of at most
// `max_events` events each, renumbering seq from `d.seq` and keeping
// final_flush/metrics_json on the last chunk only. An empty event window
// still yields one chunk (epoch announcements and final flushes have no
// events of their own).
[[nodiscard]] std::vector<TelemetryDelta> chunk_telemetry_delta(const TelemetryDelta& d,
                                                               std::size_t max_events = 200);

// Cluster-aggregated QoS over the merged, clock-aligned trace: wall-clock
// latency from each broadcast to the deliveries of the same lineage id.
struct ClusterQos {
  std::uint64_t broadcasts = 0;          // stamped broadcasts seen
  std::uint64_t deliveries_matched = 0;  // deliveries matched to a seen broadcast
  double latency_ms_mean = 0;
  double latency_ms_p50 = 0;
  double latency_ms_p99 = 0;
  double latency_ms_max = 0;
};

class TelemetryMerger {
 public:
  // Folds one delta into the per-node stream state. Out-of-order deltas are
  // tolerated (events append in arrival order; the merged exporter and QoS
  // sort by aligned time where it matters). A duplicate sequence number —
  // a replayed datagram — is counted but its events are NOT appended again,
  // so duplicates neither double-count trace events nor mask real losses in
  // the gap accounting.
  void ingest(const TelemetryDelta& d);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] bool node_seen(ProcIndex node) const { return nodes_.count(node) != 0; }
  [[nodiscard]] bool node_final(ProcIndex node) const;

  // Last admin port this node announced; 0 when none has been. The launcher
  // uses these to publish admin_endpoints.json for hds_top.
  [[nodiscard]] std::uint16_t node_admin_port(ProcIndex node) const;

  // Per-node windows for write_merged_chrome_trace, ascending node index.
  [[nodiscard]] std::vector<NodeTrace> node_traces() const;

  [[nodiscard]] ClusterQos cluster_qos() const;

  // Cluster summary for the hds_report/hds_cluster JSON: per-node delta
  // accounting (deltas received, sequence gaps, trace drops, final seen,
  // hello_done_ms, metrics) plus the QoS block.
  [[nodiscard]] Json summary() const;

 private:
  struct PerNode {
    Id id = 0;
    std::int64_t epoch_wall_us = 0;
    SimTime hello_done_ms = -1;
    std::uint16_t admin_port = 0;
    std::uint64_t dropped = 0;
    bool got_final = false;
    std::set<std::uint64_t> seen_seqs;  // distinct sequence numbers ingested
    std::uint64_t dup_deltas = 0;       // replayed datagrams (seq seen before)
    std::uint64_t max_seq = 0;          // highest sequence number seen
    std::uint64_t restarts = 0;         // epoch bumps seen (crash-restart)
    std::uint64_t stale_deltas = 0;     // late datagrams from a dead incarnation
    std::string metrics_json;
    std::vector<TraceEvent> events;
  };
  std::map<ProcIndex, PerNode> nodes_;
};

}  // namespace hds::obs
