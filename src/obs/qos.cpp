#include "obs/qos.h"

#include <algorithm>
#include <map>
#include <set>

namespace hds::obs {

namespace {

// Crash instants of the carriers of one label, in time order.
std::map<Id, std::vector<SimTime>> crashes_by_label(const QosInput& in) {
  std::map<Id, std::vector<SimTime>> out;
  for (std::size_t i = 0; i < in.gt.n() && i < in.crash_at.size(); ++i) {
    if (in.crash_at[i] >= 0) out[in.gt.ids[i]].push_back(in.crash_at[i]);
  }
  for (auto& [x, times] : out) std::sort(times.begin(), times.end());
  return out;
}

void analyze_detection(const QosInput& in, QosReport& r) {
  const auto by_label = crashes_by_label(in);
  if (by_label.empty()) return;
  const Multiset<Id> all = in.gt.all_ids();
  for (ProcIndex i = 0; i < in.gt.n(); ++i) {
    if (!in.gt.correct[i] || i >= in.trusted.size()) continue;
    const auto* traj = in.trusted[i];
    if (traj == nullptr || traj->empty()) continue;
    const auto segs = traj->segments(0, in.run_end);
    for (const auto& [x, times] : by_label) {
      const std::size_t initial = all.multiplicity(x);
      for (std::size_t k = 1; k <= times.size(); ++k) {
        const SimTime crash = times[k - 1];
        const std::size_t threshold = initial - k;  // mult must drop to this
        // The detection instant is the end of the last window in which the
        // observer still over-counted x; a window reaching run_end means the
        // drop never became permanent.
        QosDetection d{i, x, k, crash, 0};
        for (const auto& seg : segs) {
          if (seg.end <= crash) continue;
          if (seg.value.multiplicity(x) > threshold) {
            d.latency = seg.end >= in.run_end ? -1 : seg.end - crash;
          }
        }
        r.detections.push_back(d);
      }
    }
  }
  double sum = 0;
  std::size_t detected = 0;
  for (const auto& d : r.detections) {
    if (d.latency < 0) {
      ++r.undetected;
      continue;
    }
    r.detection_time_max = std::max(r.detection_time_max, d.latency);
    sum += static_cast<double>(d.latency);
    ++detected;
  }
  if (detected > 0) r.detection_time_mean = sum / static_cast<double>(detected);
}

void analyze_mistakes(const QosInput& in, QosReport& r) {
  const Multiset<Id> correct = in.gt.correct_ids();
  for (ProcIndex i = 0; i < in.gt.n(); ++i) {
    if (!in.gt.correct[i] || i >= in.trusted.size()) continue;
    const auto* traj = in.trusted[i];
    if (traj == nullptr || traj->empty()) continue;
    QosMistakes m{i, 0, 0, 0};
    SimTime open = -1;  // start of the current mistake interval, -1 if none
    const auto close = [&](SimTime end) {
      if (open < 0) return;
      ++m.intervals;
      m.total_duration += end - open;
      m.max_duration = std::max(m.max_duration, end - open);
      open = -1;
    };
    for (const auto& seg : traj->segments(in.gst, in.run_end)) {
      const bool mistake = !correct.is_subset_of(seg.value);
      if (mistake && open < 0) open = seg.begin;
      if (!mistake) close(seg.begin);
    }
    close(in.run_end);
    r.mistakes.push_back(m);
    r.mistake_intervals += m.intervals;
    r.mistake_duration_max = std::max(r.mistake_duration_max, m.max_duration);
  }
}

void analyze_leader(const QosInput& in, QosReport& r) {
  const Multiset<Id> correct = in.gt.correct_ids();
  bool first = true;
  bool agree = true;
  HOmegaOut common;
  for (ProcIndex i = 0; i < in.gt.n(); ++i) {
    if (!in.gt.correct[i] || i >= in.homega.size()) continue;
    const auto* traj = in.homega[i];
    if (traj == nullptr || traj->empty()) continue;
    QosLeader l{i, 0, 0, kBottomId, 0};
    const auto& pts = traj->points();
    for (std::size_t k = 0; k < pts.size(); ++k) {
      if (k > 0 && pts[k].first > in.gst) ++l.flaps_post_gst;
    }
    l.settle_time = std::max<SimTime>(0, traj->last_change() - in.gst);
    l.final_leader = traj->final().leader;
    l.final_multiplicity = traj->final().multiplicity;
    if (first) {
      common = traj->final();
      first = false;
    } else if (!(traj->final() == common)) {
      agree = false;
    }
    r.leaders.push_back(l);
    r.leader_flaps += l.flaps_post_gst;
    r.leader_settle_max = std::max(r.leader_settle_max, l.settle_time);
  }
  r.converged = !first && agree && correct.contains(common.leader);
}

void analyze_quorums(const QosInput& in, QosReport& r) {
  const Multiset<Id> correct = in.gt.correct_ids();
  // Final quorum sets of the correct observers, with the observer index.
  std::vector<std::pair<ProcIndex, const HSigmaSnapshot*>> finals;
  std::set<Multiset<Id>> distinct;
  for (ProcIndex i = 0; i < in.gt.n(); ++i) {
    if (!in.gt.correct[i] || i >= in.hsigma.size()) continue;
    const auto* traj = in.hsigma[i];
    if (traj == nullptr || traj->empty()) continue;
    finals.emplace_back(i, &traj->final());
    for (const auto& [x, m] : traj->final().quora) {
      (void)x;
      distinct.insert(m);
    }
    // Liveness wait: the first instant some quorum lies within I(Correct).
    SimTime wait = -1;
    for (const auto& [t, snap] : traj->points()) {
      for (const auto& [x, m] : snap.quora) {
        (void)x;
        if (m.is_subset_of(correct)) {
          wait = t;
          break;
        }
      }
      if (wait >= 0) break;
    }
    r.liveness_waits.push_back(wait);
  }
  r.quora_distinct = distinct.size();
  for (const SimTime w : r.liveness_waits) {
    if (w < 0) {
      r.liveness_wait_max = -1;
      break;
    }
    r.liveness_wait_max = std::max(r.liveness_wait_max, w);
  }
  // Pairwise minimum intersection margin, self-pairs included (the margin of
  // a quorum with itself is its size, so any quorum at all yields a pair).
  for (std::size_t a = 0; a < finals.size(); ++a) {
    for (std::size_t b = a; b < finals.size(); ++b) {
      std::ptrdiff_t pair_min = -1;
      for (const auto& [xa, qa] : finals[a].second->quora) {
        (void)xa;
        for (const auto& [xb, qb] : finals[b].second->quora) {
          (void)xb;
          const auto margin = static_cast<std::ptrdiff_t>(qa.intersection(qb).size());
          if (pair_min < 0 || margin < pair_min) pair_min = margin;
        }
      }
      if (pair_min < 0) continue;
      r.quorum_margins.push_back(
          QosQuorumPair{finals[a].first, finals[b].first, static_cast<std::size_t>(pair_min)});
      if (r.quorum_margin_min < 0 || pair_min < r.quorum_margin_min) {
        r.quorum_margin_min = pair_min;
      }
    }
  }
}

bool any_present(const auto& trajs) {
  for (const auto* t : trajs) {
    if (t != nullptr && !t->empty()) return true;
  }
  return false;
}

}  // namespace

QosReport analyze_qos(const QosInput& in) {
  QosReport r;
  r.gst = in.gst;
  r.run_end = in.run_end;
  r.has_trusted = any_present(in.trusted);
  r.has_homega = any_present(in.homega);
  r.has_hsigma = any_present(in.hsigma);
  if (r.has_trusted) {
    analyze_detection(in, r);
    analyze_mistakes(in, r);
  }
  if (r.has_homega) analyze_leader(in, r);
  if (r.has_hsigma) analyze_quorums(in, r);
  return r;
}

void emit_qos(const QosReport& r, MetricsRegistry* reg) {
  if (reg == nullptr) return;
  if (r.has_trusted) {
    auto& det = reg->histogram("qos_detection_time", latency_buckets());
    for (const auto& d : r.detections) {
      if (d.latency >= 0) det.observe(d.latency);
    }
    reg->counter("qos_detection_undetected_total").inc(r.undetected);
    auto& dur = reg->histogram("qos_mistake_duration", time_buckets());
    for (const auto& m : r.mistakes) {
      if (m.max_duration > 0) dur.observe(m.max_duration);
    }
    reg->counter("qos_mistake_intervals_total").inc(r.mistake_intervals);
  }
  if (r.has_homega) {
    reg->counter("qos_leader_flaps_total").inc(r.leader_flaps);
    reg->gauge("qos_leader_settle_time").set_max(r.leader_settle_max);
    reg->gauge("qos_converged").set(r.converged ? 1 : 0);
  }
  if (r.has_hsigma) {
    auto& margin = reg->histogram("qos_quorum_margin", size_buckets());
    for (const auto& p : r.quorum_margins) {
      margin.observe(static_cast<std::int64_t>(p.margin));
    }
    reg->gauge("qos_quorum_margin_min").set(r.quorum_margin_min);
    reg->gauge("qos_quora_distinct").set(static_cast<std::int64_t>(r.quora_distinct));
    auto& wait = reg->histogram("qos_liveness_wait", latency_buckets());
    for (const SimTime w : r.liveness_waits) {
      if (w >= 0) wait.observe(w);
    }
  }
}

Json qos_json(const QosReport& r) {
  Json out = Json::object();
  out["gst"] = Json(r.gst);
  out["run_end"] = Json(r.run_end);
  Json fams = Json::object();
  fams["trusted"] = Json(r.has_trusted);
  fams["homega"] = Json(r.has_homega);
  fams["hsigma"] = Json(r.has_hsigma);
  out["families"] = std::move(fams);

  Json det = Json::object();
  det["max"] = Json(r.detection_time_max);
  det["mean"] = Json(r.detection_time_mean);
  det["undetected"] = Json(r.undetected);
  Json drecs = Json::array();
  for (const auto& d : r.detections) {
    Json rec = Json::object();
    rec["observer"] = Json(static_cast<std::int64_t>(d.observer));
    rec["label"] = Json(static_cast<std::int64_t>(d.label));
    rec["kth"] = Json(d.kth);
    rec["crash_time"] = Json(d.crash_time);
    rec["latency"] = Json(d.latency);
    drecs.push_back(std::move(rec));
  }
  det["records"] = std::move(drecs);
  out["detection"] = std::move(det);

  Json mis = Json::object();
  mis["intervals"] = Json(r.mistake_intervals);
  mis["duration_max"] = Json(r.mistake_duration_max);
  Json mrecs = Json::array();
  for (const auto& m : r.mistakes) {
    Json rec = Json::object();
    rec["observer"] = Json(static_cast<std::int64_t>(m.observer));
    rec["intervals"] = Json(m.intervals);
    rec["total_duration"] = Json(m.total_duration);
    rec["max_duration"] = Json(m.max_duration);
    mrecs.push_back(std::move(rec));
  }
  mis["records"] = std::move(mrecs);
  out["mistakes"] = std::move(mis);

  Json led = Json::object();
  led["flaps"] = Json(r.leader_flaps);
  led["settle_max"] = Json(r.leader_settle_max);
  led["converged"] = Json(r.converged);
  Json lrecs = Json::array();
  for (const auto& l : r.leaders) {
    Json rec = Json::object();
    rec["observer"] = Json(static_cast<std::int64_t>(l.observer));
    rec["flaps"] = Json(l.flaps_post_gst);
    rec["settle_time"] = Json(l.settle_time);
    rec["final_leader"] = Json(static_cast<std::int64_t>(l.final_leader));
    rec["final_multiplicity"] = Json(l.final_multiplicity);
    lrecs.push_back(std::move(rec));
  }
  led["records"] = std::move(lrecs);
  out["leader"] = std::move(led);

  Json quo = Json::object();
  quo["margin_min"] = Json(static_cast<std::int64_t>(r.quorum_margin_min));
  quo["distinct"] = Json(r.quora_distinct);
  quo["liveness_wait_max"] = Json(r.liveness_wait_max);
  Json waits = Json::array();
  for (const SimTime w : r.liveness_waits) waits.push_back(Json(w));
  quo["liveness_waits"] = std::move(waits);
  Json pairs = Json::array();
  for (const auto& p : r.quorum_margins) {
    Json rec = Json::object();
    rec["a"] = Json(static_cast<std::int64_t>(p.a));
    rec["b"] = Json(static_cast<std::int64_t>(p.b));
    rec["margin"] = Json(p.margin);
    pairs.push_back(std::move(rec));
  }
  quo["pairs"] = std::move(pairs);
  out["quorum"] = std::move(quo);
  return out;
}

}  // namespace hds::obs
