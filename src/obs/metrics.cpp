#include "obs/metrics.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hds::obs {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: need at least one bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
}

void Histogram::observe(std::int64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());  // overflow slot when past end
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::int64_t> exp_buckets(std::int64_t lo, std::int64_t hi) {
  if (lo <= 0 || hi < lo) throw std::invalid_argument("exp_buckets: need 0 < lo <= hi");
  std::vector<std::int64_t> out;
  for (std::int64_t b = lo;; b *= 2) {
    out.push_back(b);
    if (b >= hi) break;
  }
  return out;
}

std::vector<std::int64_t> linear_buckets(std::int64_t lo, std::int64_t step, std::size_t count) {
  if (step <= 0 || count == 0) throw std::invalid_argument("linear_buckets: bad step/count");
  std::vector<std::int64_t> out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = lo + step * static_cast<std::int64_t>(i);
  return out;
}

const std::vector<std::int64_t>& time_buckets() {
  static const std::vector<std::int64_t> b = exp_buckets(1, 65536);
  return b;
}

const std::vector<std::int64_t>& size_buckets() {
  static const std::vector<std::int64_t> b = [] {
    std::vector<std::int64_t> v = linear_buckets(1, 1, 16);
    v.push_back(32);
    v.push_back(64);
    return v;
  }();
  return b;
}

const std::vector<std::int64_t>& latency_buckets() {
  static const std::vector<std::int64_t> b = [] {
    std::vector<std::int64_t> v;
    for (std::int64_t p = 1; p <= (std::int64_t{1} << 20); p *= 2) {
      v.push_back(p);
      if (p >= 2 && p < (std::int64_t{1} << 20)) v.push_back(p + p / 2);
    }
    std::sort(v.begin(), v.end());
    return v;
  }();
  return b;
}

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  // Snapshot the counts once; concurrent updates may make the slices add up
  // to slightly more than `total`, which only shifts the estimate by the
  // in-flight observations.
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = bucket_count(i);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t next = cum + counts[i];
    if (static_cast<double>(next) >= rank) {
      if (i == bounds_.size()) return static_cast<double>(bounds_.back());  // overflow bucket
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds_[i - 1]);
      const double upper = static_cast<double>(bounds_[i]);
      const double into = (rank - static_cast<double>(cum)) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
    }
    cum = next;
  }
  return static_cast<double>(bounds_.back());
}

HistogramSummary summarize(const Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  s.sum = h.sum();
  s.mean = h.mean();
  s.p50 = h.quantile(0.50);
  s.p95 = h.quantile(0.95);
  s.p99 = h.quantile(0.99);
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  std::lock_guard lk(mu_);
  auto& slot = counters_[{name, labels}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard lk(mu_);
  auto& slot = gauges_[{name, labels}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<std::int64_t>& bounds,
                                      const Labels& labels) {
  std::lock_guard lk(mu_);
  auto& slot = histograms_[{name, labels}];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name, const Labels& labels) const {
  std::lock_guard lk(mu_);
  const auto it = counters_.find({name, labels});
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name, const Labels& labels) const {
  std::lock_guard lk(mu_);
  const auto it = gauges_.find({name, labels});
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const Labels& labels) const {
  std::lock_guard lk(mu_);
  const auto it = histograms_.find({name, labels});
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::uint64_t MetricsRegistry::counter_total(const std::string& name) const {
  std::lock_guard lk(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, c] : counters_) {
    if (key.first == name) total += c->value();
  }
  return total;
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard lk(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lk(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [key, c] : counters_) {
    out.counters.push_back({key.first, key.second, c->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [key, g] : gauges_) {
    out.gauges.push_back({key.first, key.second, g->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [key, h] : histograms_) {
    MetricsSnapshot::HistogramSample s;
    s.name = key.first;
    s.labels = key.second;
    s.bounds = h->bounds();
    s.bucket_counts.resize(s.bounds.size() + 1);
    for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) s.bucket_counts[i] = h->bucket_count(i);
    s.count = h->count();
    s.sum = h->sum();
    out.histograms.push_back(std::move(s));
  }
  return out;
}

namespace {

void json_escape_to(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf] << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

void labels_to_json(std::ostream& os, const Labels& labels) {
  os << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << '"';
    json_escape_to(os, k);
    os << "\":\"";
    json_escape_to(os, v);
    os << '"';
  }
  os << '}';
}

void series_head(std::ostream& os, const std::string& name, const Labels& labels) {
  os << "{\"name\":\"";
  json_escape_to(os, name);
  os << "\",\"labels\":";
  labels_to_json(os, labels);
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::lock_guard lk(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": [";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    series_head(os, key.first, key.second);
    os << ",\"value\":" << c->value() << '}';
  }
  os << "\n  ],\n  \"gauges\": [";
  first = true;
  for (const auto& [key, g] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    series_head(os, key.first, key.second);
    os << ",\"value\":" << g->value() << '}';
  }
  os << "\n  ],\n  \"histograms\": [";
  first = true;
  for (const auto& [key, h] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    series_head(os, key.first, key.second);
    os << ",\"count\":" << h->count() << ",\"sum\":" << h->sum() << ",\"buckets\":[";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i > 0) os << ',';
      os << "{\"le\":";
      if (i < h->bounds().size()) {
        os << h->bounds()[i];
      } else {
        os << "null";  // the overflow bucket
      }
      os << ",\"count\":" << h->bucket_count(i) << '}';
    }
    os << "]}";
  }
  os << "\n  ]\n}";
  return os.str();
}

}  // namespace hds::obs
