// Minimal JSON document model: parse, navigate, build, serialize.
//
// The observability layer emits JSON in several places (metrics snapshots,
// trace exports, the QoS report) and the regression tooling must *read* it
// back (the committed BENCH_qos_baseline.json). This is the smallest value
// type that closes that loop without an external dependency: numbers are
// doubles (every quantity we serialize — ticks, counts, rates — fits a
// double exactly up to 2^53), objects preserve key order by sorting
// (std::map), and parse errors throw with a byte offset.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace hds::obs {

class Json;

class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)), offset_(offset) {}
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), num_(n) {}
  // One constrained template covers every integral width (int, int64_t,
  // uint64_t, size_t, ...) without the LP64 duplicate-overload trap.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  Json(T n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  // Typed reads; throw std::logic_error on a type mismatch.
  [[nodiscard]] bool boolean() const;
  [[nodiscard]] double number() const;
  [[nodiscard]] std::int64_t integer() const;  // number(), truncated
  [[nodiscard]] const std::string& str() const;
  [[nodiscard]] const Array& items() const;
  [[nodiscard]] const Object& fields() const;

  // Object lookup without creation; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(const std::string& key) const;
  // Convenience: find(key)->number() with a fallback for absent keys.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key, std::string fallback) const;

  // Mutating builders: first use on a null value materializes the container.
  Json& operator[](const std::string& key);  // object field
  void push_back(Json v);                    // array append

  // Serialization. indent < 0: compact one-line; otherwise pretty-printed
  // with `indent` spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  // Strict parser (no comments, no trailing commas). Throws JsonParseError.
  static Json parse(const std::string& text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

// File round-trip helpers shared by every JSON-speaking CLI tool
// (hds_chaos repros, hds_report baselines, hds_node configs), so "read the
// whole file / write it back / fail with the path in the message" exists
// exactly once. All three throw std::runtime_error naming the path;
// load_json_file lets JsonParseError (a runtime_error) propagate so callers
// can distinguish an unreadable file from malformed JSON.
std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, const std::string& text);
Json load_json_file(const std::string& path);

}  // namespace hds::obs
