#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hds::obs {

bool Json::boolean() const {
  if (type_ != Type::kBool) throw std::logic_error("Json: not a bool");
  return bool_;
}

double Json::number() const {
  if (type_ != Type::kNumber) throw std::logic_error("Json: not a number");
  return num_;
}

std::int64_t Json::integer() const { return static_cast<std::int64_t>(number()); }

const std::string& Json::str() const {
  if (type_ != Type::kString) throw std::logic_error("Json: not a string");
  return str_;
}

const Json::Array& Json::items() const {
  if (type_ != Type::kArray) throw std::logic_error("Json: not an array");
  return arr_;
}

const Json::Object& Json::fields() const {
  if (type_ != Type::kObject) throw std::logic_error("Json: not an object");
  return obj_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string Json::string_or(const std::string& key, std::string fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->is_string() ? v->str() : std::move(fallback);
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw std::logic_error("Json: not an object");
  return obj_[key];
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw std::logic_error("Json: not an array");
  arr_.push_back(std::move(v));
}

namespace {

void escape_to(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf] << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

void number_to(std::ostream& os, double n) {
  // Integral values print without a fraction so round-tripped counters and
  // tick values stay grep-able.
  if (std::isfinite(n) && n == std::floor(n) && std::abs(n) < 9.007199254740992e15) {
    os << static_cast<std::int64_t>(n);
    return;
  }
  if (!std::isfinite(n)) {  // JSON has no inf/nan; null is the honest spelling
    os << "null";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << n;
  os << tmp.str();
}

void dump_to(std::ostream& os, const Json& v, int indent, int depth) {
  const auto pad = [&](int d) {
    if (indent < 0) return;
    os << '\n';
    for (int i = 0; i < indent * d; ++i) os << ' ';
  };
  switch (v.type()) {
    case Json::Type::kNull:
      os << "null";
      return;
    case Json::Type::kBool:
      os << (v.boolean() ? "true" : "false");
      return;
    case Json::Type::kNumber:
      number_to(os, v.number());
      return;
    case Json::Type::kString:
      os << '"';
      escape_to(os, v.str());
      os << '"';
      return;
    case Json::Type::kArray: {
      os << '[';
      bool first = true;
      for (const Json& e : v.items()) {
        if (!first) os << ',';
        first = false;
        pad(depth + 1);
        dump_to(os, e, indent, depth + 1);
      }
      if (!first) pad(depth);
      os << ']';
      return;
    }
    case Json::Type::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, e] : v.fields()) {
        if (!first) os << ',';
        first = false;
        pad(depth + 1);
        os << '"';
        escape_to(os, k);
        os << (indent < 0 ? "\":" : "\": ");
        dump_to(os, e, indent, depth + 1);
      }
      if (!first) pad(depth);
      os << '}';
      return;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const { throw JsonParseError(why, pos_); }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail(std::string("bad literal, wanted ") + word);
      ++pos_;
    }
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Json(string());
      case 't':
        literal("true");
        return Json(true);
      case 'f':
        literal("false");
        return Json(false);
      case 'n':
        literal("null");
        return Json();
      default:
        return number();
    }
  }

  Json object() {
    expect('{');
    Json::Object out;
    skip_ws();
    if (consume('}')) return Json(std::move(out));
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out[std::move(key)] = value();
      skip_ws();
      if (consume('}')) return Json(std::move(out));
      expect(',');
    }
  }

  Json array() {
    expect('[');
    Json::Array out;
    skip_ws();
    if (consume(']')) return Json(std::move(out));
    while (true) {
      out.push_back(value());
      skip_ws();
      if (consume(']')) return Json(std::move(out));
      expect(',');
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned cp = hex4();
          // Surrogate pairs: a high surrogate must be followed by \uXXXX low.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 < s_.size() && s_[pos_] == '\\' && s_[pos_ + 1] == 'u') {
              pos_ += 2;
              const unsigned lo = hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              fail("lone high surrogate");
            }
          }
          utf8_append(out, cp);
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= s_.size()) fail("truncated \\u escape");
      const char c = s_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v += static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v += static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad hex digit");
      }
    }
    return v;
  }

  static void utf8_append(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    return Json(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump_to(os, *this, indent, 0);
  return os.str();
}

Json Json::parse(const std::string& text) { return Parser(text).run(); }

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << text;
  if (!out) throw std::runtime_error("short write to " + path);
}

Json load_json_file(const std::string& path) { return Json::parse(read_text_file(path)); }

}  // namespace hds::obs
