// In-process profiler: scoped-timer time accounting per subsystem, with
// thread-local accumulation and a collapsed-stack (flamegraph) exporter.
//
// The live health plane needs "which subsystem is eating the microseconds
// right now" answered without stopping the run, so the profiler is a
// sampling-free tracer of wall time: every instrumented region opens an
// HDS_PROF_SCOPE(subsystem) and the scope records elapsed time into a
// thread-local buffer keyed by the *stack* of open subsystems (so time in
// codec encode under the event-queue drain is distinguishable from codec
// encode under the UDP sender). Buffers aggregate on demand into collapsed
// stack lines ("hds;event_queue;codec_encode 1234") that flamegraph.pl /
// speedscope / inferno consume directly.
//
// Cost discipline, in order:
//  - compiled out entirely under -DHDS_NO_PROFILER (the macro expands to
//    nothing);
//  - when compiled in but disabled (the default), a scope is one relaxed
//    atomic load and a branch — the same budget as a disabled trace ring,
//    gated in CI by the hds_bench_compare 0.95x floor on the flood bench;
//  - when enabled, two steady_clock reads per scope plus a thread-local
//    hash-map bump; enabling is an observer decision, never the hot path's.
//
// The profiler is observer machinery in the paper's sense: it feeds nothing
// back into a run, consumes no RNG, and never reorders events — schedules
// are byte-identical with profiling on or off (pinned by the GoldenTrace
// tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace hds::obs {

class MetricsRegistry;

// One value per instrumented subsystem. Kept small (<= 15 real entries) so
// a whole stack path packs into one 64-bit key.
enum class ProfSubsystem : std::uint8_t {
  kEventQueue = 0,  // sim event-queue drain (Scheduler::step)
  kFdStep,          // process handler dispatch (on_start/on_message/on_timer)
  kCodecEncode,     // v1 wire encode (byte meter / frame building)
  kCodecDecode,     // v1 wire decode (recv path)
  kUdpSend,         // datagram handed to the kernel
  kUdpRecv,         // recvfrom + batch split
  kMonitor,         // online property monitor rule evaluation
  kTraceStamp,      // causal stamping + trace-ring appends
  kAdmin,           // admin channel request handling
  kCount,
};

[[nodiscard]] const char* prof_subsystem_name(ProfSubsystem s);

// Aggregated view of one distinct stack path.
struct ProfPath {
  std::vector<ProfSubsystem> stack;  // outermost first
  std::uint64_t calls = 0;
  std::uint64_t self_ns = 0;   // time in this path excluding child scopes
  std::uint64_t total_ns = 0;  // time including child scopes
};

// Process-wide profiler singleton. Threads register their buffers lazily on
// first scope; snapshot() folds every live and retired buffer into one path
// table. enable()/disable() flip the global gate all scopes check.
class Profiler {
 public:
  static Profiler& instance();

  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  // Drops all accumulated samples (live thread buffers included).
  void reset();

  // Aggregated paths, outermost-first stacks, sorted by total_ns descending.
  [[nodiscard]] std::vector<ProfPath> snapshot() const;

  // Collapsed-stack text: one "root;sub;sub count" line per path, where the
  // count is *self* nanoseconds (the flamegraph convention — children carry
  // their own lines). Lines are sorted lexicographically so exports diff.
  [[nodiscard]] std::string collapsed_stacks(const std::string& root = "hds") const;

  // Projects the aggregate into prof_self_ns_total / prof_calls_total
  // counter series labeled {subsys=<name>} (self time summed over every
  // path ending in that subsystem). Null registry is a no-op.
  void emit(MetricsRegistry* reg) const;

  // Internal: scope begin/end on the calling thread. Public only for the
  // ProfScope helper; call through HDS_PROF_SCOPE.
  static void scope_begin(ProfSubsystem s);
  static void scope_end();

 private:
  friend struct ProfThreadBuf;
  Profiler() = default;

  void register_buf(struct ProfThreadBuf* b);
  void retire_buf(struct ProfThreadBuf* b);

  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::vector<struct ProfThreadBuf*> bufs_;              // live threads
  std::map<std::uint64_t, ProfPath> retired_;            // from exited threads
};

// RAII scope. Checks the global gate once at construction: a scope that
// begins disabled stays disabled even if the profiler flips mid-flight, so
// begin/end always pair up.
class ProfScope {
 public:
  explicit ProfScope(ProfSubsystem s) : on_(Profiler::enabled()) {
    if (on_) Profiler::scope_begin(s);
  }
  ~ProfScope() {
    if (on_) Profiler::scope_end();
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  bool on_;
};

}  // namespace hds::obs

#ifdef HDS_NO_PROFILER
#define HDS_PROF_SCOPE(subsys)
#else
#define HDS_PROF_CONCAT2(a, b) a##b
#define HDS_PROF_CONCAT(a, b) HDS_PROF_CONCAT2(a, b)
#define HDS_PROF_SCOPE(subsys) \
  ::hds::obs::ProfScope HDS_PROF_CONCAT(hds_prof_scope_, __LINE__) { (subsys) }
#endif
