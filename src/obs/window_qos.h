// Streaming QoS: sliding-window estimators of the Chen/Toueg-style detector
// quality metrics, computed online from FdOutputListener change events.
//
// The post-hoc analyzer (obs/qos.h) reads whole trajectories after a run;
// this is its live counterpart, designed for the health plane: "is QoS
// degrading in this window" answered while the run is in flight. The window
// is a ring of `windows` fixed sub-windows of `width` time units each.
// Every event lands in the sub-window its timestamp selects (O(1) amortized
// — rotation clears at most the skipped slots); queries aggregate the ring.
//
// Streaming semantics vs the post-hoc analyzer, per metric:
//  - detection latency: the k-th crash among carriers of label x counts as
//    detected by observer o the FIRST time o's h_trusted multiplicity of x
//    drops to mult_I(x) - k — the streaming (optimistic) reading of the
//    analyzer's *permanent*-drop rule, since "permanent" is undecidable
//    online. Requires a crash schedule; on a live cluster (no ground-truth
//    crashes) the series stays empty.
//  - mistake accounting: an observer is "mistaken" while its ◇HP̄ output
//    misses some instance of I(Correct). Interval entries count in the
//    sub-window where they open; closed durations attribute to the
//    sub-window where they close. On a live cluster, I(Correct) is the full
//    configured membership, so this doubles as a suspicion-activity signal.
//  - HΩ flap rate: output changes after the first output, per sub-window.
//  - quorum margin: minimum |q ∩ q'| over realized HΣ quorum pairs whose
//    second member was certified in the sub-window (self-pairs included,
//    mirroring the analyzer).
//
// Like the monitor, this is observer machinery: it never feeds back into
// the run, consumes no RNG, and leaves schedules byte-identical whether
// attached or not (pinned by the GoldenTrace tests). Internally
// synchronized, so listeners may be driven from rt/net node threads.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/multiset.h"
#include "common/types.h"
#include "fd/ground_truth.h"
#include "fd/output_hooks.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace hds::obs {

struct WindowQosConfig {
  GroundTruth gt;
  // Per-process crash instants, indexed like gt.ids; -1 (or an empty
  // vector) = never crashes. Detection latency needs this; the other
  // estimators work without it.
  std::vector<SimTime> crash_at;
  SimTime width = 250;       // sub-window width, in the substrate's time units
  std::size_t windows = 8;   // ring size; covered span = width * windows
  // qos_window_* gauges land here on every ring rotation and on stats();
  // null keeps the estimator query-only.
  MetricsRegistry* metrics = nullptr;
};

// Aggregate over the ring's covered span.
struct WindowQosStats {
  SimTime window_start = 0;
  SimTime window_end = 0;             // exclusive; (cur sub-window index + 1) * width
  std::uint64_t events = 0;           // FD output changes observed in the span
  std::uint64_t detections = 0;
  double detection_latency_mean = 0;  // over detections in the span
  SimTime detection_latency_max = -1;
  std::uint64_t mistake_intervals = 0;
  SimTime mistake_time = 0;           // closed-interval duration in the span
  std::uint64_t mistakes_open = 0;    // observers currently in mistake state
  std::uint64_t homega_flaps = 0;
  std::ptrdiff_t quorum_margin_min = -1;  // -1: no pair realized in the span
};

class WindowQos {
 public:
  explicit WindowQos(WindowQosConfig cfg);

  // Stable per-process listener for set_output_listener(); valid for the
  // estimator's lifetime. i must be < gt.n().
  [[nodiscard]] FdOutputListener* listener(ProcIndex i);

  // Aggregates the ring (and refreshes the gauges when a registry is set).
  [[nodiscard]] WindowQosStats stats();

  // Per-sub-window series, oldest first (size = min(windows, sub-windows
  // seen)) — the sparkline feed for hds_top:
  //   {"width", "windows", "window_end",
  //    "flaps": [...], "mistake_time": [...], "mistake_intervals": [...],
  //    "detections": [...], "margin_min": [...], "events": [...]}
  [[nodiscard]] Json json();

  [[nodiscard]] SimTime width() const { return cfg_.width; }

 private:
  struct Bucket {
    std::uint64_t events = 0;
    std::uint64_t det_count = 0;
    std::uint64_t det_lat_sum = 0;
    SimTime det_lat_max = -1;
    std::uint64_t mistake_entries = 0;
    SimTime mistake_time = 0;
    std::uint64_t flaps = 0;
    std::ptrdiff_t margin_min = -1;
  };

  struct ProcListener final : FdOutputListener {
    WindowQos* owner = nullptr;
    ProcIndex proc = 0;

    void on_trusted_change(SimTime at, const Multiset<Id>& m) override {
      owner->trusted_changed(proc, at, m);
    }
    void on_homega_change(SimTime at, const HOmegaOut& out) override {
      owner->homega_changed(proc, at, out);
    }
    void on_hsigma_change(SimTime at, const HSigmaSnapshot& snap) override {
      owner->hsigma_changed(proc, at, snap);
    }
    void on_sigma_change(SimTime at, const Multiset<Id>& m) override {
      owner->trusted_changed(proc, at, m);  // Σ shares the coverage rule
    }
  };

  void trusted_changed(ProcIndex p, SimTime at, const Multiset<Id>& m);
  void homega_changed(ProcIndex p, SimTime at, const HOmegaOut& out);
  void hsigma_changed(ProcIndex p, SimTime at, const HSigmaSnapshot& snap);

  // mu_ must be held. Returns the bucket for `at` after rotating the ring.
  Bucket& advance(SimTime at);
  [[nodiscard]] WindowQosStats aggregate_locked() const;
  void refresh_gauges(const WindowQosStats& s);

  WindowQosConfig cfg_;
  Multiset<Id> correct_ids_;
  std::map<Id, std::vector<SimTime>> crash_times_;  // per label, ascending
  std::map<Id, std::size_t> all_mult_;              // mult_I per label
  std::vector<std::unique_ptr<ProcListener>> proxies_;

  mutable std::mutex mu_;
  std::vector<Bucket> ring_;
  std::int64_t cur_idx_ = -1;  // highest sub-window index seen; -1 = none
  std::uint64_t total_events_ = 0;

  struct ObserverState {
    std::map<Id, std::size_t> detected;  // per label, crashes already detected
    bool mistaken = false;
    SimTime mistake_since = 0;
    bool homega_seen = false;
    HOmegaOut last_homega;
  };
  std::vector<ObserverState> obs_;
  std::set<Multiset<Id>> seen_quora_;  // across all observers

  Gauge* g_end_ = nullptr;
  Gauge* g_events_ = nullptr;
  Gauge* g_detections_ = nullptr;
  Gauge* g_det_mean_ = nullptr;
  Gauge* g_det_max_ = nullptr;
  Gauge* g_mistake_intervals_ = nullptr;
  Gauge* g_mistake_time_ = nullptr;
  Gauge* g_mistakes_open_ = nullptr;
  Gauge* g_flaps_ = nullptr;
  Gauge* g_margin_min_ = nullptr;
};

}  // namespace hds::obs
