#include "exp/runner.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

namespace hds::exp {

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

double TaskTimings::max_ms() const {
  double m = 0;
  for (const double v : task_ms) {
    if (v > m) m = v;
  }
  return m;
}

double TaskTimings::mean_ms() const {
  if (task_ms.empty()) return 0;
  double sum = 0;
  for (const double v : task_ms) sum += v;
  return sum / static_cast<double>(task_ms.size());
}

double TaskTimings::imbalance() const {
  const double mean = mean_ms();
  return mean <= 0 ? 1.0 : max_ms() / mean;
}

namespace {

double run_one_timed(const std::function<void(std::size_t)>& task, std::size_t i) {
  const auto t0 = std::chrono::steady_clock::now();
  task(i);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

void run_indexed(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& task, TaskTimings* timings) {
  if (timings != nullptr) timings->task_ms.assign(count, 0.0);
  if (count == 0) return;
  if (jobs <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      if (timings != nullptr) {
        timings->task_ms[i] = run_one_timed(task, i);
      } else {
        task(i);
      }
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        if (timings != nullptr) {
          // Index-addressed slot write: no two tasks share i, and the join
          // below publishes every slot to the caller.
          timings->task_ms[i] = run_one_timed(task, i);
        } else {
          task(i);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        // Keep draining: sibling tasks are independent, and a clean join
        // beats tearing down threads mid-System.
      }
    }
  };

  std::vector<std::thread> pool;
  const std::size_t n_threads = jobs < count ? jobs : count;
  pool.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace hds::exp
