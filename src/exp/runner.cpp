#include "exp/runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace hds::exp {

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void run_indexed(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (jobs <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        // Keep draining: sibling tasks are independent, and a clean join
        // beats tearing down threads mid-System.
      }
    }
  };

  std::vector<std::thread> pool;
  const std::size_t n_threads = jobs < count ? jobs : count;
  pool.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace hds::exp
