// Parallel experiment engine: runs N independent experiment tasks on a
// fixed-size worker pool with deterministic, thread-count-independent
// results.
//
// The contract that makes -j a pure wall-clock knob:
//   * each task owns everything it touches (its own System, MetricsRegistry,
//     TraceLog, accumulators) — the library keeps no mutable globals, so
//     tasks never share state;
//   * a task's randomness comes from Rng::derived(seed, task_index), a pure
//     function of the configured seed and the task's index — never from a
//     shared generator whose draw order would depend on scheduling;
//   * results land in an index-addressed slot (run_collect) or are reduced
//     by the caller after the join, in index order.
// Under that contract a sweep's output is bitwise identical for -j 1 and
// -j 64, which the determinism suite asserts.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace hds::exp {

// Worker count for "-j 0" / unspecified: hardware concurrency, at least 1.
[[nodiscard]] std::size_t default_jobs();

// Per-task wall-clock record of one run_indexed/run_collect sweep. The
// imbalance ratio (slowest task over mean) is the load-balance diagnostic:
// ~1.0 means tasks are uniform and the pool stays busy; >> 1 means one task
// dominates the sweep's critical path (the same skew signal matters for
// shard partitions of the sharded simulator).
struct TaskTimings {
  std::vector<double> task_ms;  // wall-clock of task(i), index-addressed

  [[nodiscard]] double max_ms() const;
  [[nodiscard]] double mean_ms() const;
  // max/mean; 1.0 for an empty or degenerate sweep.
  [[nodiscard]] double imbalance() const;
};

// Runs task(0) .. task(count - 1) across at most `jobs` worker threads
// (jobs <= 1 runs inline on the calling thread — no pool, same semantics).
// Tasks are claimed from an atomic cursor, so threads stay busy regardless
// of per-task skew. The first task exception is rethrown on the caller's
// thread after every worker drains. When `timings` is non-null each task's
// wall-clock lands in timings->task_ms[i] (slot write, no sharing).
void run_indexed(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& task, TaskTimings* timings = nullptr);

// run_indexed with an index-addressed result slot per task: returns
// {fn(0), ..., fn(count - 1)} in task order, whatever the execution order
// was. R must be default-constructible and movable.
template <typename Fn>
[[nodiscard]] auto run_collect(std::size_t count, std::size_t jobs, Fn&& fn,
                               TaskTimings* timings = nullptr) {
  using R = decltype(fn(std::size_t{0}));
  std::vector<R> out(count);
  run_indexed(count, jobs, [&](std::size_t i) { out[i] = fn(i); }, timings);
  return out;
}

}  // namespace hds::exp
