// Persistent shard worker pool for the sharded simulator.
//
// One long-lived thread per shard; run(fn) invokes fn(shard) on every
// worker in parallel and returns when all are done. The condition-variable
// handshake on both edges gives the coordinator/worker happens-before that
// the window-barrier protocol needs (and that TSan checks): everything the
// coordinator wrote before run() is visible to the workers, and everything
// any worker wrote during fn is visible to the coordinator after run()
// returns. Exceptions thrown by fn are captured and rethrown on the
// coordinator thread (first one wins).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hds::exp {

class ShardPool {
 public:
  explicit ShardPool(std::size_t shards) : shards_(shards) {
    workers_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      workers_.emplace_back([this, s] { worker_loop(s); });
    }
  }

  ~ShardPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
      ++epoch_;
    }
    cv_start_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  [[nodiscard]] std::size_t shards() const { return shards_; }

  // Runs fn(s) for every shard s in parallel; blocks until all return.
  void run(const std::function<void(std::size_t)>& fn) {
    std::unique_lock<std::mutex> lock(mu_);
    fn_ = &fn;
    remaining_ = shards_;
    ++epoch_;
    cv_start_.notify_all();
    cv_done_.wait(lock, [this] { return remaining_ == 0; });
    fn_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

 private:
  void worker_loop(std::size_t shard) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_start_.wait(lock, [&] { return epoch_ != seen; });
        seen = epoch_;
        if (stop_) return;
        fn = fn_;
      }
      std::exception_ptr err;
      try {
        (*fn)(shard);
      } catch (...) {
        err = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (err && !error_) error_ = err;
        if (--remaining_ == 0) cv_done_.notify_one();
      }
    }
  }

  std::size_t shards_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t remaining_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  std::vector<std::thread> workers_;
};

}  // namespace hds::exp
