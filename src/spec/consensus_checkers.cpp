#include "spec/consensus_checkers.h"

#include <algorithm>
#include <optional>
#include <string>

namespace hds {

namespace {

CheckResult check_consensus_impl(const GroundTruth& gt, const std::vector<Value>& proposals,
                                 const std::vector<DecisionRecord>& decisions,
                                 bool uniform_agreement) {
  if (proposals.size() != gt.n() || decisions.size() != gt.n()) {
    return CheckResult::fail("consensus: record count mismatch");
  }
  std::optional<Value> decided;
  for (std::size_t p = 0; p < gt.n(); ++p) {
    const DecisionRecord& d = decisions[p];
    if (d.decided && !uniform_agreement && !gt.correct[p]) {
      // Non-uniform mode: a faulty decision must still be a proposed value,
      // but is exempt from agreement.
      if (std::find(proposals.begin(), proposals.end(), d.value) == proposals.end()) {
        return CheckResult::fail("validity: faulty process " + std::to_string(p) + " decided " +
                                 std::to_string(d.value) + ", never proposed");
      }
      continue;
    }
    if (d.decided) {
      // Validity: the decided value is one of the proposed values.
      if (std::find(proposals.begin(), proposals.end(), d.value) == proposals.end()) {
        return CheckResult::fail("validity: process " + std::to_string(p) + " decided " +
                                 std::to_string(d.value) + ", never proposed");
      }
      // Agreement: all decided values are the same.
      if (decided && *decided != d.value) {
        return CheckResult::fail("agreement: values " + std::to_string(*decided) + " and " +
                                 std::to_string(d.value) + " both decided");
      }
      decided = d.value;
    } else if (gt.correct[p]) {
      // Termination: every correct process eventually decides.
      return CheckResult::fail("termination: correct process " + std::to_string(p) +
                               " never decided");
    }
  }
  if (!decided) return CheckResult::fail("termination: nobody decided");
  return CheckResult::pass();
}

}  // namespace

CheckResult check_consensus(const GroundTruth& gt, const std::vector<Value>& proposals,
                            const std::vector<DecisionRecord>& decisions) {
  return check_consensus_impl(gt, proposals, decisions, /*uniform_agreement=*/true);
}

CheckResult check_consensus_correct_only(const GroundTruth& gt,
                                         const std::vector<Value>& proposals,
                                         const std::vector<DecisionRecord>& decisions) {
  return check_consensus_impl(gt, proposals, decisions, /*uniform_agreement=*/false);
}

}  // namespace hds
