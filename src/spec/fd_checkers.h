// Machine-checked versions of the failure-detector class properties
// (Section 3 definitions). Each checker evaluates a recorded run: the
// per-process output trajectories plus the run's ground truth.
//
// Eventual ("there is a time after which ...") properties are evaluated on
// the finite trace as: the final output is the required one and it has been
// stable since `run_end - stable_window` (callers choose a window long
// enough that a latent change would have surfaced). Perpetual properties
// (HΣ validity/monotonicity/safety, Σ intersection, AP safety) are checked
// at every recorded point.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/multiset.h"
#include "common/trajectory.h"
#include "common/types.h"
#include "fd/ground_truth.h"
#include "fd/interfaces.h"

namespace hds {

struct CheckResult {
  bool ok = true;
  std::string detail;

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string why) { return {false, std::move(why)}; }
  explicit operator bool() const { return ok; }
};

// ◇HP̄ liveness: for every correct p, the final h_trusted equals I(Correct)
// and has not changed within the last `stable_window` of the run.
CheckResult check_ohp(const GroundTruth& gt,
                      const std::vector<const Trajectory<Multiset<Id>>*>& h_trusted,
                      SimTime run_end, SimTime stable_window);

// HΩ election: eventually every correct process permanently outputs the
// same (l, c) with l ∈ I(Correct) and c = mult_{I(Correct)}(l).
CheckResult check_homega(const GroundTruth& gt,
                         const std::vector<const Trajectory<HOmegaOut>*>& outputs,
                         SimTime run_end, SimTime stable_window);

// HΣ: all four properties. S(x) is computed from the complete label
// history of every process (Definition: q ∈ S(x) iff x ∈ h_labels_q at some
// time). The exported sub-checkers allow negative tests of the spec layer.
CheckResult check_hsigma(const GroundTruth& gt,
                         const std::vector<const Trajectory<HSigmaSnapshot>*>& snaps);
CheckResult check_hsigma_monotonicity(
    const std::vector<const Trajectory<HSigmaSnapshot>*>& snaps);
CheckResult check_hsigma_liveness(const GroundTruth& gt,
                                  const std::vector<const Trajectory<HSigmaSnapshot>*>& snaps);
CheckResult check_hsigma_safety(const GroundTruth& gt,
                                const std::vector<const Trajectory<HSigmaSnapshot>*>& snaps);

// Σ (multiset flavour, footnote 6): liveness — final trusted of each
// correct process ⊆ I(Correct), stable over the window; safety — every two
// outputs (any processes, any times) intersect. Empty outputs mean "not yet
// assigned" and are skipped (the Fig. 4 transformer starts unassigned).
CheckResult check_sigma(const GroundTruth& gt,
                        const std::vector<const Trajectory<Multiset<Id>>*>& trusted,
                        SimTime run_end, SimTime stable_window);

// Class S (Definition 1): eventually every correct identifier permanently
// has rank <= |Correct| at every correct process. Unique-id systems only.
CheckResult check_ranker(const GroundTruth& gt,
                         const std::vector<const Trajectory<std::vector<Id>>*>& alive_lists,
                         SimTime run_end, SimTime stable_window);

// AP: safety — at every recorded point, anap >= |alive at that time|;
// liveness — final value == |Correct| for every correct process.
CheckResult check_ap(const GroundTruth& gt,
                     const std::vector<const Trajectory<std::size_t>*>& anap,
                     const std::function<std::size_t(SimTime)>& alive_count, SimTime run_end,
                     SimTime stable_window);

// Ω (classical, unique ids): eventually the same correct identifier,
// permanently, at every correct process.
CheckResult check_omega(const GroundTruth& gt,
                        const std::vector<const Trajectory<Id>*>& leaders, SimTime run_end,
                        SimTime stable_window);

// ◇P̄ (classical, unique ids): eventually the set of correct identifiers,
// permanently, at every correct process.
CheckResult check_opbar(const GroundTruth& gt,
                        const std::vector<const Trajectory<std::set<Id>>*>& trusted,
                        SimTime run_end, SimTime stable_window);

// Exposed for direct testing: can quora (x1, m1) and (x2, m2) be realized
// by two *disjoint* process sets, given the label-carrier sets? (A "true"
// answer is an HΣ safety violation.) Polynomial via per-identifier counting:
// choices for different identifiers are independent because a process
// carries exactly one identifier.
bool hsigma_pair_violable(const Multiset<Id>& m1, const std::vector<ProcIndex>& s1,
                          const Multiset<Id>& m2, const std::vector<ProcIndex>& s2,
                          const std::vector<Id>& ids);

}  // namespace hds
