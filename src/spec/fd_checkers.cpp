#include "spec/fd_checkers.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace hds {

namespace {

std::string at_proc(std::size_t p) { return " (process " + std::to_string(p) + ")"; }

// Common skeleton for "eventually-permanently" checks of one trajectory.
template <typename V, typename Pred>
CheckResult eventually_stable(const GroundTruth& gt,
                              const std::vector<const Trajectory<V>*>& trajs, SimTime run_end,
                              SimTime stable_window, Pred final_ok, const char* what) {
  if (trajs.size() != gt.n()) return CheckResult::fail(std::string(what) + ": trajectory count");
  for (std::size_t p = 0; p < gt.n(); ++p) {
    if (!gt.correct[p]) continue;
    const auto& tr = *trajs[p];
    if (tr.empty()) return CheckResult::fail(std::string(what) + ": no output" + at_proc(p));
    std::string why;
    if (!final_ok(tr.final(), why)) {
      return CheckResult::fail(std::string(what) + ": " + why + at_proc(p));
    }
    if (tr.last_change() > run_end - stable_window) {
      return CheckResult::fail(std::string(what) + ": output still changing at " +
                               std::to_string(tr.last_change()) + at_proc(p));
    }
  }
  return CheckResult::pass();
}

}  // namespace

CheckResult check_ohp(const GroundTruth& gt,
                      const std::vector<const Trajectory<Multiset<Id>>*>& h_trusted,
                      SimTime run_end, SimTime stable_window) {
  const Multiset<Id> want = gt.correct_ids();
  return eventually_stable(
      gt, h_trusted, run_end, stable_window,
      [&](const Multiset<Id>& v, std::string& why) {
        if (v == want) return true;
        why = "final h_trusted " + v.to_string() + " != I(Correct) " + want.to_string();
        return false;
      },
      "OHP liveness");
}

CheckResult check_homega(const GroundTruth& gt,
                         const std::vector<const Trajectory<HOmegaOut>*>& outputs,
                         SimTime run_end, SimTime stable_window) {
  const Multiset<Id> correct = gt.correct_ids();
  // All correct processes must converge to one common pair; find it from the
  // first correct process and require it everywhere.
  const HOmegaOut* agreed = nullptr;
  for (std::size_t p = 0; p < gt.n(); ++p) {
    if (gt.correct[p] && !outputs[p]->empty()) {
      agreed = &outputs[p]->final();
      break;
    }
  }
  if (agreed == nullptr) return CheckResult::fail("HOmega: no correct output at all");
  if (!correct.contains(agreed->leader)) {
    return CheckResult::fail("HOmega: leader " + std::to_string(agreed->leader) +
                             " not a correct identifier");
  }
  if (agreed->multiplicity != correct.multiplicity(agreed->leader)) {
    return CheckResult::fail("HOmega: multiplicity " + std::to_string(agreed->multiplicity) +
                             " != " + std::to_string(correct.multiplicity(agreed->leader)));
  }
  const HOmegaOut want = *agreed;
  return eventually_stable(
      gt, outputs, run_end, stable_window,
      [&](const HOmegaOut& v, std::string& why) {
        if (v == want) return true;
        why = "final leader (" + std::to_string(v.leader) + "," +
              std::to_string(v.multiplicity) + ") differs from (" + std::to_string(want.leader) +
              "," + std::to_string(want.multiplicity) + ")";
        return false;
      },
      "HOmega election");
}

CheckResult check_hsigma_monotonicity(
    const std::vector<const Trajectory<HSigmaSnapshot>*>& snaps) {
  for (std::size_t p = 0; p < snaps.size(); ++p) {
    const auto& pts = snaps[p]->points();
    for (std::size_t k = 1; k < pts.size(); ++k) {
      const HSigmaSnapshot& prev = pts[k - 1].second;
      const HSigmaSnapshot& cur = pts[k].second;
      if (!std::includes(cur.labels.begin(), cur.labels.end(), prev.labels.begin(),
                         prev.labels.end())) {
        return CheckResult::fail("HSigma monotonicity: h_labels shrank" + at_proc(p));
      }
      for (const auto& [x, m] : prev.quora) {
        auto it = cur.quora.find(x);
        if (it == cur.quora.end()) {
          return CheckResult::fail("HSigma monotonicity: pair with label " + x.repr() +
                                   " disappeared" + at_proc(p));
        }
        if (!it->second.is_subset_of(m)) {
          return CheckResult::fail("HSigma monotonicity: quorum for " + x.repr() +
                                   " grew from " + m.to_string() + " to " +
                                   it->second.to_string() + at_proc(p));
        }
      }
    }
  }
  return CheckResult::pass();
}

namespace {

// S(x): the processes that ever carry label x.
std::map<Label, std::vector<ProcIndex>> carrier_sets(
    const std::vector<const Trajectory<HSigmaSnapshot>*>& snaps) {
  std::map<Label, std::set<ProcIndex>> acc;
  for (std::size_t p = 0; p < snaps.size(); ++p) {
    for (const auto& [t, snap] : snaps[p]->points()) {
      (void)t;
      for (const Label& x : snap.labels) acc[x].insert(p);
    }
  }
  std::map<Label, std::vector<ProcIndex>> out;
  for (auto& [x, s] : acc) out.emplace(x, std::vector<ProcIndex>(s.begin(), s.end()));
  return out;
}

}  // namespace

CheckResult check_hsigma_liveness(const GroundTruth& gt,
                                  const std::vector<const Trajectory<HSigmaSnapshot>*>& snaps) {
  const auto carriers = carrier_sets(snaps);
  for (std::size_t p = 0; p < gt.n(); ++p) {
    if (!gt.correct[p]) continue;
    if (snaps[p]->empty()) return CheckResult::fail("HSigma liveness: no output" + at_proc(p));
    const HSigmaSnapshot& fin = snaps[p]->final();
    bool found = false;
    for (const auto& [x, m] : fin.quora) {
      auto it = carriers.find(x);
      if (it == carriers.end()) continue;
      Multiset<Id> correct_carriers;  // I(S(x) ∩ Correct)
      for (ProcIndex q : it->second) {
        if (gt.correct[q]) correct_carriers.insert(gt.ids[q]);
      }
      if (m.is_subset_of(correct_carriers)) {
        found = true;
        break;
      }
    }
    if (!found) {
      return CheckResult::fail("HSigma liveness: no pair (x,m) with m ⊆ I(S(x) ∩ Correct)" +
                               at_proc(p));
    }
  }
  return CheckResult::pass();
}

bool hsigma_pair_violable(const Multiset<Id>& m1, const std::vector<ProcIndex>& s1,
                          const Multiset<Id>& m2, const std::vector<ProcIndex>& s2,
                          const std::vector<Id>& ids) {
  const std::set<ProcIndex> set1(s1.begin(), s1.end());
  const std::set<ProcIndex> set2(s2.begin(), s2.end());
  // Per-identifier tallies of exclusive and shared carriers.
  std::map<Id, std::size_t> only1, only2, shared;
  for (ProcIndex p : s1) (set2.contains(p) ? shared : only1)[ids[p]]++;
  for (ProcIndex p : s2) {
    if (!set1.contains(p)) only2[ids[p]]++;
  }
  auto get = [](const std::map<Id, std::size_t>& m, Id i) {
    auto it = m.find(i);
    return it == m.end() ? std::size_t{0} : it->second;
  };
  std::set<Id> involved;
  for (const auto& [i, c] : m1.counts()) {
    (void)c;
    involved.insert(i);
  }
  for (const auto& [i, c] : m2.counts()) {
    (void)c;
    involved.insert(i);
  }
  for (Id i : involved) {
    const std::size_t need1 = m1.multiplicity(i);
    const std::size_t need2 = m2.multiplicity(i);
    const std::size_t a_only = get(only1, i);
    const std::size_t b_only = get(only2, i);
    const std::size_t both = get(shared, i);
    // Realizability of each quorum alone.
    if (need1 > a_only + both || need2 > b_only + both) return false;
    // Disjoint choice: exclusive carriers first, remainder from the shared
    // pool, which both sides must fit into together.
    const std::size_t r1 = need1 > a_only ? need1 - a_only : 0;
    const std::size_t r2 = need2 > b_only ? need2 - b_only : 0;
    if (r1 + r2 > both) return false;
  }
  return true;  // two disjoint realizations exist: safety is violated
}

CheckResult check_hsigma_safety(const GroundTruth& gt,
                                const std::vector<const Trajectory<HSigmaSnapshot>*>& snaps) {
  const auto carriers = carrier_sets(snaps);
  static const std::vector<ProcIndex> kNone;
  auto s_of = [&](const Label& x) -> const std::vector<ProcIndex>& {
    auto it = carriers.find(x);
    return it == carriers.end() ? kNone : it->second;
  };
  // Union of every (x, m) pair that ever appears in any h_quora.
  std::set<std::pair<Label, Multiset<Id>>> pairs;
  for (const auto* tr : snaps) {
    for (const auto& [t, snap] : tr->points()) {
      (void)t;
      for (const auto& [x, m] : snap.quora) pairs.emplace(x, m);
    }
  }
  for (auto it1 = pairs.begin(); it1 != pairs.end(); ++it1) {
    for (auto it2 = it1; it2 != pairs.end(); ++it2) {
      if (hsigma_pair_violable(it1->second, s_of(it1->first), it2->second, s_of(it2->first),
                               gt.ids)) {
        std::ostringstream os;
        os << "HSigma safety: disjoint quora realizable for (" << it1->first << ","
           << it1->second << ") and (" << it2->first << "," << it2->second << ")";
        return CheckResult::fail(os.str());
      }
    }
  }
  return CheckResult::pass();
}

CheckResult check_hsigma(const GroundTruth& gt,
                         const std::vector<const Trajectory<HSigmaSnapshot>*>& snaps) {
  if (auto r = check_hsigma_monotonicity(snaps); !r) return r;
  if (auto r = check_hsigma_liveness(gt, snaps); !r) return r;
  return check_hsigma_safety(gt, snaps);
}

CheckResult check_sigma(const GroundTruth& gt,
                        const std::vector<const Trajectory<Multiset<Id>>*>& trusted,
                        SimTime run_end, SimTime stable_window) {
  // Safety: every two assigned outputs, across processes and times,
  // intersect.
  std::set<Multiset<Id>> outputs;
  for (const auto* tr : trusted) {
    for (const auto& [t, v] : tr->points()) {
      (void)t;
      if (!v.empty()) outputs.insert(v);
    }
  }
  for (auto it1 = outputs.begin(); it1 != outputs.end(); ++it1) {
    for (auto it2 = it1; it2 != outputs.end(); ++it2) {
      if (!it1->intersects(*it2)) {
        return CheckResult::fail("Sigma safety: " + it1->to_string() + " and " +
                                 it2->to_string() + " are disjoint");
      }
    }
  }
  // Liveness: Σ does not require the output to settle on one value — only
  // that from some point on every output is within I(Correct). Check every
  // record inside the stable window plus the final value.
  const Multiset<Id> correct = gt.correct_ids();
  for (std::size_t p = 0; p < gt.n(); ++p) {
    if (!gt.correct[p]) continue;
    const auto& tr = *trusted[p];
    if (tr.empty() || tr.final().empty()) {
      return CheckResult::fail("Sigma liveness: no assigned output (process " +
                               std::to_string(p) + ")");
    }
    auto within = [&](const Multiset<Id>& v) { return !v.empty() && v.is_subset_of(correct); };
    if (!within(tr.final())) {
      return CheckResult::fail("Sigma liveness: final trusted " + tr.final().to_string() +
                               " not within I(Correct) " + correct.to_string() + " (process " +
                               std::to_string(p) + ")");
    }
    for (const auto& [t, v] : tr.points()) {
      if (t > run_end - stable_window && !within(v)) {
        return CheckResult::fail("Sigma liveness: trusted " + v.to_string() + " at time " +
                                 std::to_string(t) + " not within I(Correct) (process " +
                                 std::to_string(p) + ")");
      }
    }
  }
  return CheckResult::pass();
}

CheckResult check_ranker(const GroundTruth& gt,
                         const std::vector<const Trajectory<std::vector<Id>>*>& alive_lists,
                         SimTime run_end, SimTime stable_window) {
  const std::size_t bound = gt.correct_count();
  const Multiset<Id> correct = gt.correct_ids();
  if (alive_lists.size() != gt.n()) return CheckResult::fail("Ranker: trajectory count");
  for (std::size_t p = 0; p < gt.n(); ++p) {
    if (!gt.correct[p]) continue;
    const auto& tr = *alive_lists[p];
    if (tr.empty()) return CheckResult::fail("Ranker: no output" + at_proc(p));
    // The list may keep reordering within the correct prefix forever; the
    // property is about ranks, so check every point in the stable window.
    for (const auto& [t, list] : tr.points()) {
      if (t <= run_end - stable_window) continue;
      for (const auto& [i, c] : correct.counts()) {
        (void)c;
        if (rank_of(i, list) > bound) {
          return CheckResult::fail("Ranker: correct id " + std::to_string(i) + " at rank " +
                                   std::to_string(rank_of(i, list)) + " > |Correct|=" +
                                   std::to_string(bound) + " at time " + std::to_string(t) +
                                   at_proc(p));
        }
      }
    }
    // And at the final state.
    for (const auto& [i, c] : correct.counts()) {
      (void)c;
      if (rank_of(i, tr.final()) > bound) {
        return CheckResult::fail("Ranker: correct id " + std::to_string(i) +
                                 " outside prefix in final list" + at_proc(p));
      }
    }
  }
  return CheckResult::pass();
}

CheckResult check_omega(const GroundTruth& gt,
                        const std::vector<const Trajectory<Id>*>& leaders, SimTime run_end,
                        SimTime stable_window) {
  const Multiset<Id> correct = gt.correct_ids();
  // Find the common final leader and require it everywhere.
  const Id* agreed = nullptr;
  for (std::size_t p = 0; p < gt.n(); ++p) {
    if (gt.correct[p] && !leaders[p]->empty()) {
      agreed = &leaders[p]->final();
      break;
    }
  }
  if (agreed == nullptr) return CheckResult::fail("Omega: no correct output at all");
  if (!correct.contains(*agreed)) {
    return CheckResult::fail("Omega: leader " + std::to_string(*agreed) +
                             " not a correct identifier");
  }
  const Id want = *agreed;
  return eventually_stable(
      gt, leaders, run_end, stable_window,
      [&](Id v, std::string& why) {
        if (v == want) return true;
        why = "final leader " + std::to_string(v) + " != " + std::to_string(want);
        return false;
      },
      "Omega election");
}

CheckResult check_opbar(const GroundTruth& gt,
                        const std::vector<const Trajectory<std::set<Id>>*>& trusted,
                        SimTime run_end, SimTime stable_window) {
  std::set<Id> want;
  for (std::size_t i = 0; i < gt.n(); ++i) {
    if (gt.correct[i]) want.insert(gt.ids[i]);
  }
  return eventually_stable(
      gt, trusted, run_end, stable_window,
      [&](const std::set<Id>& v, std::string& why) {
        if (v == want) return true;
        why = "final trusted set has " + std::to_string(v.size()) + " ids, want " +
              std::to_string(want.size());
        return false;
      },
      "OPbar liveness");
}

CheckResult check_ap(const GroundTruth& gt,
                     const std::vector<const Trajectory<std::size_t>*>& anap,
                     const std::function<std::size_t(SimTime)>& alive_count, SimTime run_end,
                     SimTime stable_window) {
  // Safety: each recorded value must dominate the alive count at the moment
  // it takes effect (alive counts only shrink, so the start of the interval
  // is the binding instant).
  for (std::size_t p = 0; p < anap.size(); ++p) {
    for (const auto& [t, v] : anap[p]->points()) {
      if (v < alive_count(t)) {
        return CheckResult::fail("AP safety: anap=" + std::to_string(v) + " < alive=" +
                                 std::to_string(alive_count(t)) + " at time " +
                                 std::to_string(t) + at_proc(p));
      }
    }
  }
  const std::size_t want = gt.correct_count();
  return eventually_stable(
      gt, anap, run_end, stable_window,
      [&](std::size_t v, std::string& why) {
        if (v == want) return true;
        why = "final anap " + std::to_string(v) + " != |Correct| " + std::to_string(want);
        return false;
      },
      "AP liveness");
}

}  // namespace hds
