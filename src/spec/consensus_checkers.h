// Machine-checked consensus properties (Section 5.1): Validity, Agreement,
// Termination — plus Integrity (at most one decision per process, implied
// by the record structure but validated against double reporting).
#pragma once

#include <vector>

#include "common/types.h"
#include "spec/fd_checkers.h"

namespace hds {

struct DecisionRecord {
  bool decided = false;
  SimTime at = 0;
  Value value = 0;
  Round round = 0;
};

// proposals[i] is v_p of process i; decisions[i] its outcome.
// Agreement is checked over ALL decisions, including those of processes
// that later crashed (uniform agreement) — the paper's Section 5.1 property.
CheckResult check_consensus(const GroundTruth& gt, const std::vector<Value>& proposals,
                            const std::vector<DecisionRecord>& decisions);

// Relaxed variant for early-stopping baselines: agreement is required among
// correct processes only (non-uniform agreement). Validity and termination
// are unchanged.
CheckResult check_consensus_correct_only(const GroundTruth& gt,
                                         const std::vector<Value>& proposals,
                                         const std::vector<DecisionRecord>& decisions);

}  // namespace hds
