#include "rt/runtime.h"

#include "obs/profiler.h"

#include <queue>

#include "net/codec.h"
#include <stdexcept>
#include <variant>

namespace hds {

namespace {
using Clock = std::chrono::steady_clock;
}

// One node: its process, mailbox (time-ordered), and dispatch thread.
class RtSystem::Node {
 public:
  Node(RtSystem& sys, ProcIndex idx) : sys_(sys), idx_(idx), env_(*this) {
    causal_.base = obs::causal_node_base(idx);
  }

  void install(std::unique_ptr<Process> p) { proc_ = std::move(p); }

  void start() {
    thread_ = std::jthread([this](std::stop_token st) { run(st); });
    // Deliver on_start through the mailbox so it runs on the node thread.
    enqueue(Clock::now(), Task{[this](Process& p, Env& e) {
      if (sys_.causal_tracing_) {
        // Each start is a lineage root; everything the process does from
        // here chains back to it.
        causal_.parent = causal_.fresh();
      }
      p.on_start(e);
    }});
  }

  void crash() {
    {
      std::lock_guard lk(mu_);
      crashed_ = true;
      queue_ = {};
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool crashed() const {
    std::lock_guard lk(mu_);
    return crashed_;
  }

  // True if the copy was accepted (node not crashed at enqueue time). The
  // delivery count is bumped by the handler task itself, i.e. on the node
  // thread — the same discipline as every other touch of the node's state.
  bool deliver(Clock::time_point at, std::shared_ptr<const Message> m) {
    return enqueue(at, Task{[this, m = std::move(m)](Process& p, Env& e) {
      if (sys_.causal_tracing_) {
        // Everything the handler sends is caused by this delivery; Lamport
        // receive rule on the carried clock.
        causal_.parent = m->meta_causal_id;
        causal_.merge(m->meta_causal_clock);
      }
      p.on_message(e, *m);
      delivered_.fetch_add(1, std::memory_order_relaxed);
      bytes_received_.fetch_add(m->meta_wire_bytes, std::memory_order_relaxed);
      obs::inc(sys_.m_copies_delivered_);
      obs::inc(sys_.m_bytes_received_, m->meta_wire_bytes);
    }});
  }

  // Relaxed atomic so the count survives a crash (the final in-flight
  // handler may still be bumping it when an observer reads).
  [[nodiscard]] std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }

  void post(std::function<void(Process&)> fn) {
    enqueue(Clock::now(), Task{[fn = std::move(fn)](Process& p, Env&) { fn(p); }});
  }

  // Only valid on this node's own thread (broadcast stamping).
  [[nodiscard]] obs::CausalSession& causal() { return causal_; }

  void request_stop() {
    thread_.request_stop();
    cv_.notify_all();
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  struct Task {
    std::function<void(Process&, Env&)> run;
  };
  struct Item {
    Clock::time_point at;
    std::uint64_t seq;
    Task task;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  class NodeEnv final : public Env {
   public:
    explicit NodeEnv(Node& node) : node_(node) {}
    [[nodiscard]] Id self_id() const override { return node_.sys_.ids_.at(node_.idx_); }
    void broadcast(Message m) override { node_.sys_.broadcast_from(node_.idx_, m); }
    TimerId set_timer(SimTime delay) override {
      const TimerId id = node_.next_timer_++;
      node_.enqueue(Clock::now() + std::chrono::milliseconds(delay),
                    Task{[id](Process& p, Env& e) {
                      Node& node = static_cast<NodeEnv&>(e).node_;
                      if (node.sys_.causal_tracing_) {
                        // A timer fire opens a fresh lineage on its node.
                        node.causal_.parent = node.causal_.fresh();
                        node.causal_.tick();
                      }
                      p.on_timer(e, id);
                    }});
      return id;
    }
    [[nodiscard]] SimTime local_now() const override { return node_.sys_.now_ms(); }

   private:
    Node& node_;
  };

  bool enqueue(Clock::time_point at, Task task) {
    {
      std::lock_guard lk(mu_);
      if (crashed_) return false;
      queue_.push(Item{at, seq_++, std::move(task)});
    }
    cv_.notify_all();
    return true;
  }

  void run(std::stop_token st) {
    for (;;) {
      Task task;
      {
        std::unique_lock lk(mu_);
        for (;;) {
          if (st.stop_requested() || crashed_) return;
          if (!queue_.empty()) {
            const auto at = queue_.top().at;
            if (at <= Clock::now()) break;
            cv_.wait_until(lk, at);
          } else {
            cv_.wait(lk);
          }
        }
        task = queue_.top().task;
        queue_.pop();
      }
      // Handlers run unlocked: only this thread touches proc_.
      HDS_PROF_SCOPE(obs::ProfSubsystem::kFdStep);
      task.run(*proc_, env_);
    }
  }

  RtSystem& sys_;
  ProcIndex idx_;
  NodeEnv env_;
  // Dispatch-context lineage (obs/causal.h); touched only by this node's
  // thread, and only when causal_tracing is on.
  obs::CausalSession causal_;
  std::unique_ptr<Process> proc_;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  std::uint64_t seq_ = 0;
  TimerId next_timer_ = 1;
  bool crashed_ = false;
  std::jthread thread_;
};

RtSystem::RtSystem(RtConfig cfg)
    : ids_(std::move(cfg.ids)),
      min_delay_ms_(cfg.min_delay_ms),
      max_delay_ms_(cfg.max_delay_ms),
      causal_tracing_(cfg.causal_tracing),
      rng_(cfg.seed),
      epoch_(Clock::now()),
      metrics_(cfg.metrics) {
  if (ids_.empty()) throw std::invalid_argument("RtSystem: need at least one process");
  if (min_delay_ms_ < 0 || max_delay_ms_ < min_delay_ms_) {
    throw std::invalid_argument("RtSystem: bad delay range");
  }
  if (metrics_ != nullptr) {
    m_broadcasts_ = &metrics_->counter("rt_broadcasts_total");
    m_copies_delivered_ = &metrics_->counter("rt_copies_delivered_total");
    m_copies_lost_link_ = &metrics_->counter("rt_copies_lost_link_total");
    m_copies_duplicated_ = &metrics_->counter("rt_copies_duplicated_total");
    m_bytes_sent_ = &metrics_->counter("rt_bytes_sent_total");
    m_bytes_received_ = &metrics_->counter("rt_bytes_received_total");
  }
  nodes_.reserve(ids_.size());
  for (ProcIndex i = 0; i < ids_.size(); ++i) nodes_.push_back(std::make_unique<Node>(*this, i));
}

RtSystem::~RtSystem() { stop(); }

void RtSystem::set_process(ProcIndex i, std::unique_ptr<Process> p) {
  if (started_) throw std::logic_error("RtSystem: set_process after start");
  nodes_.at(i)->install(std::move(p));
}

void RtSystem::start() {
  if (started_) throw std::logic_error("RtSystem: started twice");
  started_ = true;
  for (auto& node : nodes_) node->start();
}

void RtSystem::set_interposer(LinkInterposer* li) {
  if (started_) throw std::logic_error("RtSystem: set_interposer after start");
  interposer_ = li;
}

void RtSystem::crash(ProcIndex i) { nodes_.at(i)->crash(); }

bool RtSystem::is_crashed(ProcIndex i) const { return nodes_.at(i)->crashed(); }

void RtSystem::post_task(ProcIndex i, std::function<void(Process&)> task) {
  if (nodes_.at(i)->crashed()) throw std::runtime_error("RtSystem::query: node crashed");
  nodes_.at(i)->post(std::move(task));
}

void RtSystem::broadcast_from(ProcIndex from, const Message& m) {
  if (nodes_.at(from)->crashed()) return;
  Message stamped = m;
  stamped.meta_sender = from;
  stamped.meta_sent_at = now_ms();
  if (causal_tracing_) {
    // Runs on the sending node's thread (Env::broadcast is the only
    // caller), so its session needs no lock.
    obs::CausalSession& c = nodes_[from]->causal();
    stamped.meta_causal_parent = c.parent;
    stamped.meta_causal_id = c.fresh();
    stamped.meta_causal_clock = c.tick();
  }
  stamped.meta_wire_bytes =
      net::encoded_frame_size(net::builtin_codecs(), m, from, ids_.at(from)).value_or(0);
  auto shared = std::make_shared<const Message>(std::move(stamped));
  const auto now = Clock::now();
  const SimTime sent_ms = shared->meta_sent_at;
  std::uint64_t scheduled = 0;
  std::uint64_t rejected = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  for (ProcIndex to = 0; to < nodes_.size(); ++to) {
    Node* node = nodes_[to].get();
    CopyVerdict verdict;
    if (interposer_ != nullptr) verdict = interposer_->on_copy(sent_ms, from, to, shared->type);
    if (verdict.drop) {
      ++dropped;
      obs::inc(m_copies_lost_link_);
      continue;
    }
    SimTime d;
    {
      std::lock_guard lk(rng_mu_);
      d = rng_.uniform(min_delay_ms_, max_delay_ms_);
    }
    d += verdict.extra_delay;
    if (node->deliver(now + std::chrono::milliseconds(d), shared)) {
      ++scheduled;
      obs::inc(m_bytes_sent_, shared->meta_wire_bytes);
    } else {
      ++rejected;
      continue;  // destination crashed; no point scheduling duplicates
    }
    for (std::size_t dup = 0; dup < verdict.duplicates; ++dup) {
      SimTime trail = 1;
      if (verdict.duplicate_spread > 0) {
        std::lock_guard lk(rng_mu_);
        trail = rng_.uniform(1, verdict.duplicate_spread);
      }
      if (node->deliver(now + std::chrono::milliseconds(d + trail), shared)) {
        ++duplicated;
        obs::inc(m_copies_duplicated_);
        obs::inc(m_bytes_sent_, shared->meta_wire_bytes);
      }
    }
  }
  {
    std::lock_guard lk(stats_mu_);
    ++send_stats_.broadcasts;
    ++send_stats_.broadcasts_by_type[shared->type];
    send_stats_.copies_scheduled += scheduled;
    send_stats_.copies_to_crashed += rejected;
    send_stats_.copies_lost_link += dropped;
    send_stats_.copies_duplicated += duplicated;
    send_stats_.bytes_sent += shared->meta_wire_bytes * (scheduled + duplicated);
  }
  obs::inc(m_broadcasts_);
}

RtNetworkStats RtSystem::net_stats() {
  RtNetworkStats out;
  {
    std::lock_guard lk(stats_mu_);
    out = send_stats_;
  }
  for (ProcIndex i = 0; i < nodes_.size(); ++i) {
    Node* node = nodes_[i].get();
    std::uint64_t d = 0;
    if (!node->crashed()) {
      try {
        // Mailbox discipline: the node reads its own counter on its thread.
        d = query(i, [node](Process&) { return node->delivered(); });
      } catch (const std::runtime_error&) {
        d = node->delivered();  // crashed between the check and the post
      }
    } else {
      d = node->delivered();
    }
    out.copies_delivered += d;
    out.bytes_received += node->bytes_received();
  }
  return out;
}

SimTime RtSystem::now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - epoch_).count();
}

bool RtSystem::wait_for(const std::function<bool()>& pred, std::chrono::milliseconds timeout,
                        std::chrono::milliseconds poll) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(poll);
  }
  return pred();
}

void RtSystem::stop() {
  for (auto& node : nodes_) node->request_stop();
  for (auto& node : nodes_) node->join();
}

}  // namespace hds
