// Thread-based runtime: one thread per process, mutex+condvar mailboxes,
// wall-clock timers. Runs the exact same Process objects as the
// discrete-event simulator (Env time units are interpreted as
// milliseconds), demonstrating the algorithms under real concurrency.
//
// Concurrency discipline (CP.2/CP.3): each process's state is touched only
// by its own node thread. External observers access it via query(), which
// posts a closure into the node's mailbox and waits for the node thread to
// execute it — no shared writable state beyond the mailboxes themselves.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/link_fault.h"
#include "common/rng.h"
#include "common/types.h"
#include "obs/causal.h"
#include "obs/metrics.h"
#include "sim/process.h"

namespace hds {

struct RtConfig {
  std::vector<Id> ids;
  std::uint64_t seed = 1;
  // Per-copy artificial delivery delay, in milliseconds (models link
  // latency; the scheduler's own jitter adds the asynchrony).
  SimTime min_delay_ms = 0;
  SimTime max_delay_ms = 2;
  // Observability sink; null disables metric collection.
  obs::MetricsRegistry* metrics = nullptr;
  // Stamps meta_causal_* on every broadcast (lineage id, parent, Lamport
  // clock) and maintains the receive/timer causal context per node. Each
  // node owns its session (node index in the id's high bits keeps ids
  // unique without a shared counter), touched only by that node's thread.
  bool causal_tracing = false;
};

// Counter parity with the sim substrate's NetworkStats, for the thread
// runtime. Send-side counters are aggregated under a lock on the
// broadcasting thread; delivery counters live per node and are collected by
// net_stats() through the query() mailbox discipline (each alive node reads
// its own counter on its own thread), so no reader ever races a handler.
struct RtNetworkStats {
  std::uint64_t broadcasts = 0;          // broadcast() invocations
  std::uint64_t copies_scheduled = 0;    // copies enqueued toward a live node
  std::uint64_t copies_delivered = 0;    // handler actually ran at the node
  std::uint64_t copies_to_crashed = 0;   // rejected: destination already crashed
  std::uint64_t copies_lost_link = 0;    // dropped by an interposed fault plan
  std::uint64_t copies_duplicated = 0;   // extra copies injected by a fault plan
  // Estimated wire bytes (v1 codec frame size per copy scheduled /
  // delivered; 0 for message types with no registered codec). Mirrors the
  // sim substrate's NetworkStats so the two report comparable cost metrics.
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::map<std::string, std::uint64_t> broadcasts_by_type;
};

class RtSystem {
 public:
  explicit RtSystem(RtConfig cfg);
  ~RtSystem();

  RtSystem(const RtSystem&) = delete;
  RtSystem& operator=(const RtSystem&) = delete;

  void set_process(ProcIndex i, std::unique_ptr<Process> p);
  void start();

  // Installs a fault-plan interposer consulted on every copy send (chaos
  // subsystem; null detaches). Install before start(); the interposer must
  // outlive the system (it is called from node threads) and be thread-safe.
  // CopyVerdict times are interpreted in milliseconds on this substrate.
  void set_interposer(LinkInterposer* li);

  // Crash injection: the node thread stops dispatching; pending and future
  // deliveries to the node are dropped.
  void crash(ProcIndex i);

  [[nodiscard]] std::size_t n() const { return ids_.size(); }
  [[nodiscard]] Id id_of(ProcIndex i) const { return ids_.at(i); }
  [[nodiscard]] bool is_crashed(ProcIndex i) const;

  // Runs `fn` on node i's own thread against its process object and returns
  // the result. Blocks until executed (throws if the node has crashed).
  template <typename F>
  auto query(ProcIndex i, F&& fn) -> decltype(fn(std::declval<Process&>())) {
    using R = decltype(fn(std::declval<Process&>()));
    std::promise<R> prom;
    auto fut = prom.get_future();
    post_task(i, [&prom, fn = std::forward<F>(fn)](Process& p) mutable {
      if constexpr (std::is_void_v<R>) {
        fn(p);
        prom.set_value();
      } else {
        prom.set_value(fn(p));
      }
    });
    return fut.get();
  }

  // Polls `pred` (evaluated on the caller thread; use query() inside for
  // per-node state) until it holds or the timeout elapses.
  bool wait_for(const std::function<bool()>& pred, std::chrono::milliseconds timeout,
                std::chrono::milliseconds poll = std::chrono::milliseconds(5));

  // Aggregated network counters (see RtNetworkStats). Blocks briefly: the
  // per-node delivery counts are read via query() on each alive node's own
  // thread; a node that crashed reports the count it had accumulated.
  [[nodiscard]] RtNetworkStats net_stats();

  // Requests every node thread to stop and joins them.
  void stop();

 private:
  class Node;

  void post_task(ProcIndex i, std::function<void(Process&)> task);
  void broadcast_from(ProcIndex from, const Message& m);
  [[nodiscard]] SimTime now_ms() const;

  std::vector<Id> ids_;
  SimTime min_delay_ms_, max_delay_ms_;
  bool causal_tracing_ = false;
  std::mutex rng_mu_;
  Rng rng_;
  std::chrono::steady_clock::time_point epoch_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_broadcasts_ = nullptr;
  obs::Counter* m_copies_delivered_ = nullptr;
  obs::Counter* m_copies_lost_link_ = nullptr;
  obs::Counter* m_copies_duplicated_ = nullptr;
  obs::Counter* m_bytes_sent_ = nullptr;
  obs::Counter* m_bytes_received_ = nullptr;
  LinkInterposer* interposer_ = nullptr;

  // Send-side counters; guarded by stats_mu_ (broadcasts come from many
  // node threads).
  std::mutex stats_mu_;
  RtNetworkStats send_stats_;

  std::vector<std::unique_ptr<Node>> nodes_;
  bool started_ = false;
};

}  // namespace hds
