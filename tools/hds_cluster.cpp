// hds_cluster — loopback deployment launcher: spawns N hds_node processes
// on 127.0.0.1, drives a full run, and verifies the outcome.
//
//   hds_cluster --node PATH/hds_node --stack fig8 --n 3 [--t 1] [--seed S]
//               [--dir OUT] [--timeout-ms 60000] [--no-batching]
//               [--metrics] [--homonymous] [--no-trace]
//               [--trace-capacity N] [--telemetry-interval-ms MS]
//               [--no-admin] [--linger-ms MS] [--profile]
//               [--reliable] [--loss P] [--supervise]
//               [--kill-node I] [--kill-at-ms MS] [--max-restarts K]
//
// Self-healing plane: --reliable turns on the per-link ARQ layer in every
// node (and the nodes' fig8 DECIDE rebroadcast), --loss P drops each
// inter-node copy with probability P inside every node, and --supervise
// makes the launcher a supervisor: a node that dies by a signal is
// respawned in place (same slot, same UDP port) with an incremented
// incarnation epoch, so it REJOINs the running cluster instead of
// re-running the HELLO barrier. --kill-node/--kill-at-ms SIGKILL one slot
// mid-run to exercise exactly that path. A respawned node announces a fresh
// admin port; the launcher re-publishes admin_endpoints.json so hds_top and
// the telemetry plane follow the new incarnation.
//
// Health plane: unless --no-admin, every node serves hds-admin-v1
// (STATS/STATUS) on an ephemeral UDP port. Each node announces its bound
// port through its telemetry deltas (and drops it in nodeI.admin_port);
// once every slot has announced, the launcher publishes
// --dir/admin_endpoints.json for hds_top. --profile turns on the in-process
// profiler in every node and collects nodeI.folded collapsed stacks;
// --linger-ms stretches the post-decision linger so a dashboard or the CI
// smoke has time to poll live nodes.
//
// Steps: probe-bind N ephemeral UDP ports (closed again just before the
// spawn — the hds_node barrier tolerates the tiny rebind window), write one
// hds-node-config-v1 JSON per slot into --dir, fork/exec the daemons with
// stdout/stderr captured to files, wait with a deadline (SIGKILL on
// overrun), then parse each node's result line.
//
// Telemetry plane (default on; --no-trace disables): the launcher binds an
// admin UDP port, every node streams hds-telemetry-v1 deltas to it, and a
// TelemetryMerger rebases the per-node traces onto one wall-clock timeline.
// Outputs land in --dir: trace_merged.json (Chrome trace, one pid per node,
// flow arrows send->recv across lanes) and a "telemetry" block in the
// summary (per-node delta/drop accounting + cluster QoS latency).
//
// Fail fast: a node exiting nonzero while peers are still running (e.g. it
// died before the HELLO barrier, which would wedge everyone else until the
// full deadline) starts a short grace timer; survivors are then killed, the
// run is marked failed, and whatever telemetry arrived is still reported.
//
// Verification per stack: fig8/fig9 — every node decided, all values agree
// (uniform agreement) and each is some node's proposal (validity);
// fig6 — every node converged on the same (leader, multiplicity);
// fig7 — every node certified at least one quorum;
// smr — every node's replicated log settled, all applied frontiers and
// order-sensitive log hashes agree, and client ops actually committed.
// Exit 0 iff everything checks out; a machine-readable summary JSON
// (schema hds-cluster-result-v1) is the last stdout line.
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/udp.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "obs/trace_export.h"

namespace {

using hds::obs::Json;

struct Options {
  std::string node_bin;
  std::string stack = "fig8";
  std::size_t n = 3;
  std::size_t t = 1;
  std::uint64_t seed = 1;
  std::string dir;
  std::int64_t timeout_ms = 60000;
  bool batching = true;
  bool metrics = false;
  bool homonymous = false;  // give two nodes the same identifier
  bool trace = true;        // causal tracing + telemetry plane
  std::size_t trace_capacity = 1 << 16;
  std::int64_t telemetry_interval_ms = 200;
  std::int64_t fail_fast_grace_ms = 2000;
  bool node_admin = true;     // per-node hds-admin-v1 servers
  std::int64_t linger_ms = -1;  // -1 = node default
  bool profile = false;
  bool reliable = false;        // per-link ARQ in every node
  double loss = 0.0;            // symmetric copy-loss probability per node
  bool supervise = false;       // respawn signal-killed nodes with epoch+1
  std::int64_t kill_node = -1;  // slot to SIGKILL mid-run (-1 = none)
  std::int64_t kill_at_ms = 500;
  int max_restarts = 3;         // per-slot respawn budget
};

void usage(std::ostream& os) {
  os << "usage: hds_cluster --node PATH --stack fig6|fig7|fig8|fig9|smr --n N\n"
        "                   [--t T] [--seed S] [--dir OUT] [--timeout-ms MS]\n"
        "                   [--no-batching] [--metrics] [--homonymous]\n"
        "                   [--no-trace] [--trace-capacity N]\n"
        "                   [--telemetry-interval-ms MS] [--no-admin]\n"
        "                   [--linger-ms MS] [--profile]\n"
        "                   [--reliable] [--loss P] [--supervise]\n"
        "                   [--kill-node I] [--kill-at-ms MS] [--max-restarts K]\n";
}

bool parse_args(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--node") {
      const char* v = next();
      if (v == nullptr) return false;
      o.node_bin = v;
    } else if (a == "--stack") {
      const char* v = next();
      if (v == nullptr) return false;
      o.stack = v;
    } else if (a == "--n") {
      const char* v = next();
      if (v == nullptr) return false;
      o.n = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (a == "--t") {
      const char* v = next();
      if (v == nullptr) return false;
      o.t = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (a == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--dir") {
      const char* v = next();
      if (v == nullptr) return false;
      o.dir = v;
    } else if (a == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      o.timeout_ms = std::strtoll(v, nullptr, 10);
    } else if (a == "--no-batching") {
      o.batching = false;
    } else if (a == "--metrics") {
      o.metrics = true;
    } else if (a == "--homonymous") {
      o.homonymous = true;
    } else if (a == "--no-trace") {
      o.trace = false;
    } else if (a == "--trace-capacity") {
      const char* v = next();
      if (v == nullptr) return false;
      o.trace_capacity = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (a == "--telemetry-interval-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      o.telemetry_interval_ms = std::strtoll(v, nullptr, 10);
    } else if (a == "--no-admin") {
      o.node_admin = false;
    } else if (a == "--linger-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      o.linger_ms = std::strtoll(v, nullptr, 10);
    } else if (a == "--profile") {
      o.profile = true;
    } else if (a == "--reliable") {
      o.reliable = true;
    } else if (a == "--loss") {
      const char* v = next();
      if (v == nullptr) return false;
      o.loss = std::strtod(v, nullptr);
    } else if (a == "--supervise") {
      o.supervise = true;
    } else if (a == "--kill-node") {
      const char* v = next();
      if (v == nullptr) return false;
      o.kill_node = std::strtoll(v, nullptr, 10);
    } else if (a == "--kill-at-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      o.kill_at_ms = std::strtoll(v, nullptr, 10);
    } else if (a == "--max-restarts") {
      const char* v = next();
      if (v == nullptr) return false;
      o.max_restarts = static_cast<int>(std::strtol(v, nullptr, 10));
    } else {
      return false;
    }
  }
  if (o.loss < 0.0 || o.loss >= 1.0) return false;
  if (o.kill_node >= 0 && static_cast<std::size_t>(o.kill_node) >= o.n) return false;
  return !o.node_bin.empty() && o.n >= 1;
}

// Identifier pattern: 1..n, or with --homonymous the first two slots share
// identifier 1 (needs n >= 3 so a correct majority still exists).
std::vector<std::uint64_t> make_ids(const Options& o) {
  std::vector<std::uint64_t> ids(o.n);
  for (std::size_t i = 0; i < o.n; ++i) ids[i] = i + 1;
  if (o.homonymous && o.n >= 3) {
    ids[1] = ids[0];
    for (std::size_t i = 2; i < o.n; ++i) ids[i] = i;
  }
  return ids;
}

Json node_config(const Options& o, const std::vector<std::uint64_t>& ids,
                 const std::vector<std::uint16_t>& ports, std::size_t self,
                 std::uint16_t admin_port, std::uint64_t epoch = 0) {
  Json cfg = Json::object();
  cfg["schema"] = "hds-node-config-v1";
  cfg["self"] = self;
  cfg["stack"] = o.stack;
  if (o.reliable) cfg["reliable"] = true;
  if (o.loss > 0.0) cfg["loss"] = o.loss;
  if (epoch > 0) cfg["epoch"] = epoch;
  Json peers = Json::array();
  for (std::size_t i = 0; i < o.n; ++i) {
    Json p = Json::object();
    p["id"] = ids[i];
    p["host"] = "127.0.0.1";
    p["port"] = ports[i];
    peers.push_back(p);
  }
  cfg["peers"] = peers;
  cfg["seed"] = o.seed + self;
  cfg["proposal"] = 100 + self;
  cfg["t_known"] = o.t;
  cfg["batching"] = o.batching;
  cfg["max_time_ms"] = o.timeout_ms;
  cfg["barrier_timeout_ms"] = o.timeout_ms;
  if (o.metrics) cfg["metrics_json"] = o.dir + "/node" + std::to_string(self) + "_metrics.json";
  if (o.trace) {
    cfg["trace_capacity"] = o.trace_capacity;
    cfg["admin_host"] = "127.0.0.1";
    cfg["admin_port"] = admin_port;
    cfg["telemetry_interval_ms"] = o.telemetry_interval_ms;
  }
  if (o.linger_ms >= 0) cfg["linger_ms"] = o.linger_ms;
  if (o.node_admin) {
    cfg["admin_listen_port"] = 0;  // ephemeral; announced via telemetry
    cfg["admin_port_file"] = o.dir + "/node" + std::to_string(self) + ".admin_port";
  }
  if (o.profile) {
    cfg["profile"] = true;
    cfg["profile_out"] = o.dir + "/node" + std::to_string(self) + ".folded";
  }
  return cfg;
}

pid_t spawn_node(const std::string& bin, const std::string& cfg_path, const std::string& out_path,
                 const std::string& err_path) {
  const pid_t pid = fork();
  if (pid != 0) return pid;  // parent (or fork failure, reported there)
  // Child: capture output, exec the daemon.
  if (FILE* f = std::freopen(out_path.c_str(), "w", stdout); f == nullptr) _exit(127);
  if (FILE* f = std::freopen(err_path.c_str(), "w", stderr); f == nullptr) _exit(127);
  execl(bin.c_str(), bin.c_str(), "--config", cfg_path.c_str(), (char*)nullptr);
  _exit(127);
}

// The result line is the LAST non-empty stdout line (the daemon logs to
// stderr, so stdout normally holds exactly one line).
Json parse_result(const std::string& out_path) {
  const std::string text = hds::obs::read_text_file(out_path);
  std::string last;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      if (!cur.empty()) last = cur;
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) last = cur;
  if (last.empty()) throw std::runtime_error("no result line in " + out_path);
  return Json::parse(last);
}

int run(const Options& o) {
  // Reserve one ephemeral port per node. The sockets stay open while ALL
  // ports are chosen (so the kernel cannot hand out duplicates), then close
  // just before the spawn. The small rebind window is covered by the
  // hds_node HELLO barrier: nothing is sent before every peer is bound.
  std::vector<std::uint16_t> ports(o.n);
  {
    std::vector<std::unique_ptr<hds::net::UdpSocket>> probes;
    for (std::size_t i = 0; i < o.n; ++i) {
      auto s = std::make_unique<hds::net::UdpSocket>();
      s->open(hds::net::UdpEndpoint{"127.0.0.1", 0});
      ports[i] = s->local_port();
      probes.push_back(std::move(s));
    }
  }

  // Telemetry plane: bind the admin socket before any node spawns so the
  // very first delta (the epoch announcement right after a node's barrier)
  // has somewhere to land.
  hds::net::UdpSocket admin;
  hds::obs::TelemetryMerger merger;
  std::mutex merger_mu;
  std::atomic<bool> tele_stop{false};
  std::uint64_t tele_datagrams = 0;
  std::uint64_t tele_malformed = 0;
  const std::string endpoints_path = o.dir + "/admin_endpoints.json";
  std::atomic<bool> endpoints_written{false};
  // Last port published per slot (guarded by merger_mu): a respawned
  // incarnation binds a fresh ephemeral admin port, and a mismatch against
  // this vector is what triggers a re-publish mid-run.
  std::vector<std::uint16_t> published_ports(o.n, 0);

  // Publishes admin_endpoints.json for hds_top. Primary source is the port
  // each node announced through its telemetry deltas; the nodeI.admin_port
  // drop files cover --no-trace runs. Returns true when every slot's port
  // is known (the file is written either way, flagged "complete").
  const auto publish_endpoints = [&](bool allow_files) {
    Json nodes = Json::object();
    bool complete = true;
    for (std::size_t i = 0; i < o.n; ++i) {
      std::uint16_t port = 0;
      {
        std::lock_guard lk(merger_mu);
        port = merger.node_admin_port(static_cast<hds::ProcIndex>(i));
        published_ports[i] = port;
      }
      if (port == 0 && allow_files) {
        try {
          const std::string text =
              hds::obs::read_text_file(o.dir + "/node" + std::to_string(i) + ".admin_port");
          port = static_cast<std::uint16_t>(std::strtoul(text.c_str(), nullptr, 10));
        } catch (const std::exception&) {
        }
      }
      if (port == 0) {
        complete = false;
        continue;
      }
      Json ep = Json::object();
      ep["host"] = "127.0.0.1";
      ep["port"] = port;
      nodes[std::to_string(i)] = std::move(ep);
    }
    Json doc = Json::object();
    doc["schema"] = "hds-admin-endpoints-v1";
    doc["n"] = o.n;
    doc["complete"] = complete;
    doc["nodes"] = std::move(nodes);
    hds::obs::write_text_file(endpoints_path, doc.dump(2) + "\n");
    if (complete) endpoints_written.store(true, std::memory_order_relaxed);
    return complete;
  };

  std::thread listener;
  if (o.trace) {
    admin.open(hds::net::UdpEndpoint{"127.0.0.1", 0}, 50);
    listener = std::thread([&] {
      std::vector<std::uint8_t> buf;
      while (!tele_stop.load(std::memory_order_relaxed)) {
        const auto len = admin.recv(buf);
        if (!len.has_value()) continue;
        bool all_announced = false;
        try {
          const Json j = Json::parse(std::string(buf.begin(), buf.begin() + *len));
          const hds::obs::TelemetryDelta d = hds::obs::telemetry_delta_from_json(j);
          std::lock_guard lk(merger_mu);
          merger.ingest(d);
          ++tele_datagrams;
          // Publish when a slot announces a port we have not published yet —
          // covers both the initial all-announced instant and a respawned
          // incarnation's fresh ephemeral port.
          all_announced = o.node_admin && d.admin_port != 0 && d.node < o.n &&
                          published_ports[d.node] != d.admin_port;
          for (std::size_t i = 0; all_announced && i < o.n; ++i) {
            all_announced = merger.node_admin_port(static_cast<hds::ProcIndex>(i)) != 0;
          }
        } catch (const std::exception&) {
          ++tele_malformed;
        }
        // Outside the merger lock: publishing while every node is mid-run
        // is the whole point — hds_top attaches to a live cluster.
        if (all_announced && publish_endpoints(false)) {
          std::cerr << "hds_cluster: all admin ports announced -> " << endpoints_path << "\n";
        }
      }
    });
  }

  const std::vector<std::uint64_t> ids = make_ids(o);
  std::vector<pid_t> pids(o.n, -1);
  std::vector<std::string> out_paths(o.n), err_paths(o.n);
  for (std::size_t i = 0; i < o.n; ++i) {
    const std::string base = o.dir + "/node" + std::to_string(i);
    const std::string cfg_path = base + ".json";
    out_paths[i] = base + ".out";
    err_paths[i] = base + ".err";
    hds::obs::write_text_file(cfg_path,
                              node_config(o, ids, ports, i, admin.local_port()).dump(2) + "\n");
    pids[i] = spawn_node(o.node_bin, cfg_path, out_paths[i], err_paths[i]);
    if (pids[i] < 0) {
      std::cerr << "hds_cluster: fork failed for node " << i << "\n";
      for (std::size_t k = 0; k < i; ++k) kill(pids[k], SIGKILL);
      tele_stop.store(true, std::memory_order_relaxed);
      if (listener.joinable()) listener.join();
      return 1;
    }
  }
  std::cerr << "hds_cluster: spawned " << o.n << " node(s), stack=" << o.stack << "\n";

  // Wait for everyone, with a deadline covering barrier + run + linger.
  // Fail fast: one node exiting nonzero (config error, immediate crash,
  // barrier timeout) leaves the survivors blocked on it — the HELLO barrier
  // and the quorum waits both need every slot — so after a short grace the
  // survivors are killed instead of burning the whole deadline.
  const auto t_start = std::chrono::steady_clock::now();
  const auto deadline =
      t_start + std::chrono::milliseconds(o.timeout_ms) + std::chrono::seconds(10);
  std::vector<int> exit_codes(o.n, -1);
  std::vector<int> restarts(o.n, 0);
  std::size_t live = o.n;
  bool timed_out = false;
  bool failed_fast = false;
  bool kill_fired = false;
  std::size_t first_failed_node = 0;
  std::optional<std::chrono::steady_clock::time_point> first_failure;
  while (live > 0) {
    // Scheduled fault: SIGKILL the victim slot once (skipped if it already
    // exited on its own — there is no incarnation left to crash).
    if (o.kill_node >= 0 && !kill_fired &&
        std::chrono::steady_clock::now() >= t_start + std::chrono::milliseconds(o.kill_at_ms)) {
      kill_fired = true;
      const auto victim = static_cast<std::size_t>(o.kill_node);
      if (exit_codes[victim] == -1) {
        std::cerr << "hds_cluster: SIGKILL node " << victim << " at +" << o.kill_at_ms << "ms\n";
        kill(pids[victim], SIGKILL);
      }
    }
    for (std::size_t i = 0; i < o.n; ++i) {
      if (exit_codes[i] != -1) continue;
      int status = 0;
      const pid_t r = waitpid(pids[i], &status, WNOHANG);
      if (r == pids[i]) {
        // Crash-restart supervision: a signal death (the crash model) is
        // respawned in place with an incremented incarnation epoch while the
        // restart budget lasts. The new process rebinds the same data port,
        // REJOINs through the running peers, and catches up via the ARQ
        // requeue + DECIDE rebroadcast. Nonzero *exits* (config errors,
        // barrier timeouts) are logic failures and still fail fast.
        if (o.supervise && WIFSIGNALED(status) && restarts[i] < o.max_restarts &&
            !first_failure.has_value()) {
          ++restarts[i];
          const auto epoch = static_cast<std::uint64_t>(restarts[i]);
          const std::string cfg_path = o.dir + "/node" + std::to_string(i) + ".json";
          hds::obs::write_text_file(
              cfg_path,
              node_config(o, ids, ports, i, admin.local_port(), epoch).dump(2) + "\n");
          pids[i] = spawn_node(o.node_bin, cfg_path, out_paths[i], err_paths[i]);
          if (pids[i] >= 0) {
            std::cerr << "hds_cluster: node " << i << " died (signal " << WTERMSIG(status)
                      << "); respawned as epoch " << epoch << "\n";
            continue;  // the slot is live again; nothing exited
          }
          std::cerr << "hds_cluster: respawn fork failed for node " << i << "\n";
        }
        exit_codes[i] = WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
        --live;
        if (exit_codes[i] != 0 && !first_failure.has_value()) {
          first_failure = std::chrono::steady_clock::now();
          first_failed_node = i;
          std::cerr << "hds_cluster: node " << i << " exited " << exit_codes[i]
                    << "; killing survivors in " << o.fail_fast_grace_ms << "ms\n";
        }
      }
    }
    if (live == 0) break;
    const auto now = std::chrono::steady_clock::now();
    const bool grace_over =
        first_failure.has_value() &&
        now > *first_failure + std::chrono::milliseconds(o.fail_fast_grace_ms);
    if (grace_over || now > deadline) {
      timed_out = !grace_over;
      failed_fast = grace_over;
      for (std::size_t i = 0; i < o.n; ++i) {
        if (exit_codes[i] == -1) {
          kill(pids[i], SIGKILL);
          int status = 0;
          waitpid(pids[i], &status, 0);
          exit_codes[i] = 124;
          --live;
        }
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Collect and verify.
  bool ok = !timed_out;
  Json nodes = Json::array();
  std::vector<Json> results(o.n);
  for (std::size_t i = 0; i < o.n; ++i) {
    if (exit_codes[i] != 0) {
      std::cerr << "hds_cluster: node " << i << " exited " << exit_codes[i] << " (see "
                << err_paths[i] << ")\n";
      ok = false;
    }
    try {
      results[i] = parse_result(out_paths[i]);
    } catch (const std::exception& e) {
      std::cerr << "hds_cluster: node " << i << ": " << e.what() << "\n";
      ok = false;
      results[i] = Json::object();
    }
    nodes.push_back(results[i]);
  }

  std::string verdict = "ok";
  if (o.stack == "fig8" || o.stack == "fig9") {
    std::set<std::int64_t> values;
    std::set<std::int64_t> valid;
    for (std::size_t i = 0; i < o.n; ++i) valid.insert(static_cast<std::int64_t>(100 + i));
    for (std::size_t i = 0; i < o.n && ok; ++i) {
      const Json* d = results[i].find("decided");
      if (d == nullptr || !d->boolean()) {
        verdict = "node " + std::to_string(i) + " did not decide";
        ok = false;
        break;
      }
      const std::int64_t v = static_cast<std::int64_t>(results[i].number_or("value", -1));
      values.insert(v);
      if (valid.count(v) == 0) {
        verdict = "node " + std::to_string(i) + " decided non-proposed value";
        ok = false;
      }
    }
    if (ok && values.size() != 1) {
      verdict = "agreement violated: " + std::to_string(values.size()) + " distinct decisions";
      ok = false;
    }
  } else if (o.stack == "fig6") {
    std::set<std::pair<std::int64_t, std::int64_t>> leaders;
    for (std::size_t i = 0; i < o.n && ok; ++i) {
      leaders.insert({static_cast<std::int64_t>(results[i].number_or("leader", -1)),
                      static_cast<std::int64_t>(results[i].number_or("multiplicity", -1))});
    }
    if (ok && leaders.size() != 1) {
      verdict = "leader disagreement across nodes";
      ok = false;
    }
  } else if (o.stack == "fig7") {
    for (std::size_t i = 0; i < o.n && ok; ++i) {
      if (results[i].number_or("quora", 0) < 1) {
        verdict = "node " + std::to_string(i) + " certified no quorum";
        ok = false;
      }
    }
  } else if (o.stack == "smr") {
    // Replicated-log convergence: every node's log settled (applied ==
    // committed), all nodes applied the same prefix — identical frontier
    // AND identical order-sensitive log hash — and the cluster as a whole
    // actually committed client traffic. Hashes travel as hex strings
    // because JSON numbers cannot carry 64 bits.
    std::set<std::string> hashes;
    std::set<std::int64_t> frontiers;
    double total_ops = 0.0;
    for (std::size_t i = 0; i < o.n && ok; ++i) {
      const Json* s = results[i].find("settled");
      if (s == nullptr || !s->boolean()) {
        verdict = "node " + std::to_string(i) + " log did not settle";
        ok = false;
        break;
      }
      hashes.insert(results[i].string_or("log_hash", ""));
      frontiers.insert(static_cast<std::int64_t>(results[i].number_or("applied_through", -1)));
      total_ops += results[i].number_or("ops_done", 0);
    }
    if (ok && frontiers.size() != 1) {
      verdict = "applied frontiers diverge across nodes";
      ok = false;
    }
    if (ok && hashes.size() != 1) {
      verdict = "log hash disagreement: " + std::to_string(hashes.size()) + " distinct logs";
      ok = false;
    }
    if (ok && total_ops <= 0) {
      verdict = "no client ops completed";
      ok = false;
    }
  }
  if (timed_out) verdict = "deadline exceeded";
  if (failed_fast) {
    verdict = "node " + std::to_string(first_failed_node) + " exited " +
              std::to_string(exit_codes[first_failed_node]) + "; survivors killed";
  }

  // Drain the telemetry plane: final-flush datagrams may still be in
  // flight right after the last child exits.
  std::vector<hds::obs::NodeTrace> node_traces;
  Json telemetry;
  if (o.trace) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    tele_stop.store(true, std::memory_order_relaxed);
    listener.join();
    admin.close();
    std::lock_guard lk(merger_mu);
    node_traces = merger.node_traces();
    telemetry = merger.summary();
    telemetry["datagrams"] = tele_datagrams;
    telemetry["malformed"] = tele_malformed;
  }

  Json summary = Json::object();
  summary["schema"] = "hds-cluster-result-v1";
  summary["stack"] = o.stack;
  summary["n"] = o.n;
  summary["ok"] = ok;
  summary["verdict"] = ok ? "ok" : verdict;
  summary["nodes"] = nodes;
  if (o.supervise || o.kill_node >= 0) {
    Json r = Json::array();
    for (const int k : restarts) r.push_back(k);
    summary["restarts"] = r;
  }
  if (o.node_admin && !endpoints_written.load(std::memory_order_relaxed)) {
    // Fallback for --no-trace (or lost announcements): the port drop files.
    publish_endpoints(true);
  }
  if (o.node_admin) summary["admin_endpoints"] = endpoints_path;
  if (o.trace) {
    const std::string trace_path = o.dir + "/trace_merged.json";
    const std::string label = "hds_cluster " + o.stack + " n=" + std::to_string(o.n) +
                              " seed=" + std::to_string(o.seed);
    hds::obs::write_text_file(trace_path,
                              hds::obs::merged_chrome_trace_json(node_traces, label));
    summary["telemetry"] = telemetry;
    summary["trace_merged"] = trace_path;
    std::cerr << "hds_cluster: merged trace (" << node_traces.size() << " node lanes) -> "
              << trace_path << "\n";
  }
  std::cout << summary.dump() << "\n";
  hds::obs::write_text_file(o.dir + "/summary.json", summary.dump(2) + "\n");
  if (ok) {
    std::cerr << "hds_cluster: PASS (" << o.stack << ", n=" << o.n << ")\n";
  } else {
    std::cerr << "hds_cluster: FAIL: " << verdict << "\n";
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse_args(argc, argv, o)) {
    usage(std::cerr);
    return 2;
  }
  if (o.dir.empty()) {
    o.dir = "cluster_out_" + std::to_string(getpid());
  }
  if (mkdir(o.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::cerr << "hds_cluster: cannot create " << o.dir << "\n";
    return 2;
  }
  try {
    return run(o);
  } catch (const std::exception& e) {
    std::cerr << "hds_cluster: " << e.what() << "\n";
    return 2;
  }
}
