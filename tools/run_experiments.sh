#!/usr/bin/env bash
# Reproduces everything: build, full test suite, every per-figure benchmark,
# the trace/metrics exports, and the QoS report with its regression check.
#
# All artifacts of one invocation land in experiments_out/<UTC timestamp>/:
#   test_output.txt           full ctest transcript
#   bench_output.txt          every benchmark's console output
#   <bench>_metrics.json      per-benchmark metrics snapshot (--metrics-json)
#   fig8_trace.json / .jsonl  structured event log exports
#   cluster_fig8/             3-process UDP deployment: per-node configs,
#                             stdout/stderr, metrics, summary.json
#   qos_report.{json,md}      QoS sweep + regression verdict
#   qos_metrics_*.json        per-sweep-point metrics snapshots
#
# Exits nonzero if the build, the tests, or the QoS regression check fail.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="experiments_out/$(date -u +%Y%m%dT%H%M%SZ)"
mkdir -p "$OUT"
echo "artifacts: $OUT"

cmake -B build -S .
cmake --build build -j

JOBS="$(nproc 2>/dev/null || echo 1)"

ctest --test-dir build -j "$JOBS" 2>&1 | tee "$OUT/test_output.txt"

: > "$OUT/bench_output.txt"
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "==== $name ====" | tee -a "$OUT/bench_output.txt"
  "$b" --metrics-json="$OUT/${name}_metrics.json" 2>&1 | tee -a "$OUT/bench_output.txt"
done

# Real multi-process deployment: 3 hds_node processes over loopback UDP run
# Fig. 8 to a verified common decision (per-node stdout/metrics in the dir).
build/tools/hds_cluster --node build/tools/hds_node --stack fig8 --n 3 --t 1 \
  --seed 1 --timeout-ms 60000 --metrics --dir "$OUT/cluster_fig8"

build/tools/trace_export --stack fig8 --n 5 --crashes 1 --seed 1 \
  --chrome "$OUT/fig8_trace.json" \
  --jsonl "$OUT/fig8_events.jsonl" \
  --metrics "$OUT/fig8_metrics.json"

# QoS sweep against the committed baseline; a regression fails the script
# (after everything above has been collected).
qos_status=0
build/tools/hds_report --stack fig8 --n 5 --seed 1 -j "$JOBS" \
  --out-dir "$OUT" --baseline BENCH_qos_baseline.json || qos_status=$?

# Seeded chaos sweep on the parallel engine (case set is -j independent).
build/tools/hds_chaos --fuzz 4 --stack all --seed-base 1 -j "$JOBS" \
  --out "$OUT/chaos_repro.json"

echo "done: artifacts in $OUT"
if [ "$qos_status" -ne 0 ]; then
  echo "QoS regression check FAILED (exit $qos_status); see $OUT/qos_report.md" >&2
  exit "$qos_status"
fi
