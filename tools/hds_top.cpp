// hds_top — terminal dashboard over a live hds cluster's health plane.
//
//   hds_top --nodes 127.0.0.1:9301,127.0.0.1:9302 [...]
//   hds_top --cluster-dir OUT [...]
//
// Every refresh polls each node's hds-admin-v1 channel with STATUS and
// renders one row per node: identity, FD output (leader/multiplicity,
// trusted and suspected label multisets), consensus progress
// (round/decided/value), trace-ring drops, and window-QoS sparklines
// (events, HΩ flaps, mistake time per sub-window, oldest to newest).
//
// When the nodes run the smr stack (their STATUS bodies carry an "smr"
// object), a replicated-log panel follows the FD table: per-node epoch /
// frontier / completed-op counts plus two sparklines accumulated across
// refreshes — committed ops per second (deltas of ops_done between polls)
// and the running p99 commit latency — and a cluster-wide log-hash
// agreement verdict in the panel header.
//
// --cluster-dir reads the admin_endpoints.json an hds_cluster run publishes
// once every node has announced its (possibly ephemeral) admin port,
// retrying until the file appears and is complete or --wait-ms expires.
//
// Scripted mode, for the CI smoke and anything else that wants assertions
// rather than a screen:
//
//   hds_top --cluster-dir OUT --once --json [--wait-ms 15000]
//
// polls until every node responds, the reported HΩ leaders agree, and —
// when a consensus stack is running — every node reports decided, or the
// deadline passes; then prints exactly one hds-top-snapshot-v1 JSON
// document: per-node STATUS bodies plus the aggregate view (reporting
// count, whether the leaders agree and on whom, whether all decided and on
// what value).
//
// Exit: 0 snapshot complete (all nodes reporting, leaders agreed;
// consensus decided if present), 1 incomplete at deadline, 2 usage error.
//
// --timeout-ms puts a hard wall-clock ceiling on the whole invocation
// (endpoint discovery AND polling, with per-RPC timeouts clamped to the
// time left). Without it, a node that never reports keeps a scripted
// --once --json poll burning its full --wait-ms, and each pass blocks
// --rpc-timeout-ms per silent node; with it, the tool exits 1 at the
// deadline and still prints the partial snapshot, whose "missing" array
// names the slots that never answered.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/admin.h"
#include "net/udp.h"
#include "obs/json.h"

namespace {

using hds::obs::Json;

struct Options {
  std::vector<hds::net::UdpEndpoint> nodes;
  std::string cluster_dir;
  bool once = false;
  bool json = false;
  std::int64_t wait_ms = 0;        // scripted: keep polling this long for a
                                   // complete snapshot before giving up
  std::int64_t timeout_ms = -1;    // hard overall deadline; -1 = none
  std::int64_t interval_ms = 500;  // interactive refresh cadence
  int rpc_timeout_ms = 750;
};

void usage(std::ostream& os) {
  os << "usage: hds_top --nodes HOST:PORT[,HOST:PORT...] | --cluster-dir DIR\n"
        "               [--once] [--json] [--wait-ms MS] [--timeout-ms MS]\n"
        "               [--interval-ms MS] [--rpc-timeout-ms MS]\n";
}

bool parse_endpoint(const std::string& s, hds::net::UdpEndpoint& ep) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) return false;
  ep.host = s.substr(0, colon);
  const unsigned long port = std::strtoul(s.c_str() + colon + 1, nullptr, 10);
  if (port == 0 || port > 65535) return false;
  ep.port = static_cast<std::uint16_t>(port);
  return true;
}

bool parse_args(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--nodes") {
      const char* v = next();
      if (v == nullptr) return false;
      std::string cur;
      for (const char* p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
          hds::net::UdpEndpoint ep;
          if (!cur.empty()) {
            if (!parse_endpoint(cur, ep)) return false;
            o.nodes.push_back(ep);
          }
          cur.clear();
          if (*p == '\0') break;
        } else {
          cur += *p;
        }
      }
    } else if (a == "--cluster-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      o.cluster_dir = v;
    } else if (a == "--once") {
      o.once = true;
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--wait-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      o.wait_ms = std::strtoll(v, nullptr, 10);
    } else if (a == "--timeout-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      o.timeout_ms = std::strtoll(v, nullptr, 10);
    } else if (a == "--interval-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      o.interval_ms = std::strtoll(v, nullptr, 10);
    } else if (a == "--rpc-timeout-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      o.rpc_timeout_ms = static_cast<int>(std::strtol(v, nullptr, 10));
    } else {
      return false;
    }
  }
  return !o.nodes.empty() || !o.cluster_dir.empty();
}

// Loads admin_endpoints.json; empty result when the file is absent, not yet
// complete, or malformed (the launcher may still be mid-publication).
std::vector<hds::net::UdpEndpoint> endpoints_from_dir(const std::string& dir) {
  std::vector<hds::net::UdpEndpoint> out;
  Json doc;
  try {
    doc = hds::obs::load_json_file(dir + "/admin_endpoints.json");
  } catch (const std::exception&) {
    return out;
  }
  if (doc.string_or("schema", "") != "hds-admin-endpoints-v1") return out;
  const Json* complete = doc.find("complete");
  if (complete == nullptr || !complete->boolean()) return out;
  const auto n = static_cast<std::size_t>(doc.number_or("n", 0));
  const Json* nodes = doc.find("nodes");
  if (nodes == nullptr) return out;
  for (std::size_t i = 0; i < n; ++i) {
    const Json* ep = nodes->find(std::to_string(i));
    if (ep == nullptr) return {};
    hds::net::UdpEndpoint e;
    e.host = ep->string_or("host", "127.0.0.1");
    e.port = static_cast<std::uint16_t>(ep->number_or("port", 0));
    if (e.port == 0) return {};
    out.push_back(e);
  }
  return out;
}

// One polling pass over every node. The aggregate fields are what the CI
// smoke asserts on: reporting == n, leaders_agree, all_decided + value.
Json take_snapshot(const std::vector<hds::net::UdpEndpoint>& nodes,
                   hds::net::AdminClient& client, int rpc_timeout_ms,
                   std::chrono::steady_clock::time_point hard_deadline =
                       std::chrono::steady_clock::time_point::max()) {
  Json per_node = Json::object();
  Json missing = Json::array();
  std::size_t reporting = 0;
  std::set<std::int64_t> leaders;
  std::set<std::int64_t> values;
  bool any_consensus = false;
  std::size_t decided_count = 0;
  bool any_smr = false;
  std::set<std::string> smr_hashes;
  std::int64_t smr_applied_min = -1;
  double smr_ops_total = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    // Clamp each RPC to the time left so one pass over N silent nodes
    // cannot overshoot the overall deadline by N * rpc_timeout.
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                               hard_deadline - std::chrono::steady_clock::now())
                               .count();
    std::optional<std::string> body;
    std::string err = "deadline exceeded before poll";
    if (remaining > 0) {
      const int budget = static_cast<int>(
          std::min<std::int64_t>(rpc_timeout_ms, std::max<std::int64_t>(1, remaining)));
      body = client.request(nodes[i], "STATUS", budget);
      if (!body.has_value()) err = client.last_error();
    }
    Json st;
    if (!body.has_value()) {
      st = Json::object();
      st["error"] = err;
      missing.push_back(i);
    } else {
      try {
        st = Json::parse(*body);
        ++reporting;
        if (const Json* lead = st.find("leader")) leaders.insert(lead->integer());
        if (const Json* dec = st.find("decided")) {
          any_consensus = true;
          if (dec->boolean()) {
            ++decided_count;
            values.insert(static_cast<std::int64_t>(st.number_or("value", -1)));
          }
        }
        if (const Json* sm = st.find("smr")) {
          any_smr = true;
          smr_hashes.insert(sm->string_or("log_hash", ""));
          const auto applied =
              static_cast<std::int64_t>(sm->number_or("applied_through", -1));
          smr_applied_min =
              smr_applied_min < 0 ? applied : std::min(smr_applied_min, applied);
          smr_ops_total += sm->number_or("ops_done", 0);
        }
      } catch (const std::exception& e) {
        st = Json::object();
        st["error"] = std::string("bad STATUS body: ") + e.what();
      }
    }
    per_node[std::to_string(i)] = std::move(st);
  }
  Json s = Json::object();
  s["schema"] = "hds-top-snapshot-v1";
  s["n"] = nodes.size();
  s["reporting"] = reporting;
  s["missing"] = std::move(missing);
  s["leaders_agree"] = !leaders.empty() && leaders.size() == 1;
  if (leaders.size() == 1) s["leader"] = *leaders.begin();
  if (any_consensus) {
    s["all_decided"] = reporting == nodes.size() && decided_count == reporting;
    s["decided_count"] = decided_count;
    if (values.size() == 1) s["value"] = *values.begin();
  }
  if (any_smr) {
    // A mid-run split (one node's applied frontier trailing the others) is
    // normal; scripted consumers that need settled agreement should use
    // hds_cluster's verdict. This aggregate is the live view.
    Json sm = Json::object();
    sm["hashes_agree"] = smr_hashes.size() == 1;
    if (smr_hashes.size() == 1) sm["log_hash"] = *smr_hashes.begin();
    sm["applied_min"] = smr_applied_min;
    sm["ops_total"] = smr_ops_total;
    s["smr"] = std::move(sm);
  }
  // Complete = the stable end state a scripted poll waits for: every node
  // answering, the HΩ leaders converged (consensus can decide rounds before
  // the detector settles, so decided alone is too early a stop), and — when
  // a consensus stack is running — every node decided. Leaderless stacks
  // (fig7's HΣ-only deployment) report no leader at all; an empty set is
  // agreement, a split is not.
  s["complete"] = reporting == nodes.size() && leaders.size() <= 1 &&
                  (!any_consensus || decided_count == reporting);
  s["nodes"] = std::move(per_node);
  return s;
}

// ---------------------------------------------------------------- display

// Unicode eighth-blocks scaled to the series max; "·" for an all-zero row.
std::string sparkline(const std::vector<double>& series, std::size_t max_cells = 8) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (series.empty()) return "·";
  const std::size_t start = series.size() > max_cells ? series.size() - max_cells : 0;
  double peak = 0;
  for (std::size_t i = start; i < series.size(); ++i) {
    peak = std::max(peak, series[i]);
  }
  if (peak <= 0) return "·";
  std::string out;
  for (std::size_t i = start; i < series.size(); ++i) {
    const auto level =
        static_cast<std::size_t>(std::min(7.0, (series[i] / peak) * 7.0));
    out += kBlocks[level];
  }
  return out;
}

std::string sparkline(const Json* series, std::size_t max_cells = 8) {
  if (series == nullptr || !series->is_array()) return "·";
  std::vector<double> v;
  v.reserve(series->items().size());
  for (const Json& x : series->items()) v.push_back(x.number());
  return sparkline(v, max_cells);
}

// Cross-refresh state behind the replicated-log panel's sparklines: the
// STATUS body only carries running totals, so throughput must be derived
// from deltas between successive polls of the same node.
struct SmrHistory {
  std::vector<std::vector<double>> ops_rate;  // per node: committed ops/sec
  std::vector<std::vector<double>> p99;       // per node: running p99 latency
  std::vector<double> last_ops;
  std::vector<std::chrono::steady_clock::time_point> last_at;

  explicit SmrHistory(std::size_t n)
      : ops_rate(n), p99(n), last_ops(n, -1), last_at(n) {}

  void update(const Json& snap) {
    static constexpr std::size_t kKeep = 64;
    const Json* per_node = snap.find("nodes");
    if (per_node == nullptr) return;
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops_rate.size(); ++i) {
      const Json* st = per_node->find(std::to_string(i));
      const Json* sm = st != nullptr ? st->find("smr") : nullptr;
      if (sm == nullptr) continue;
      const double ops = sm->number_or("ops_done", 0);
      if (last_ops[i] >= 0) {
        const double secs =
            std::chrono::duration<double>(now - last_at[i]).count();
        // A respawned node restarts its counters; clamp the negative delta
        // to zero rather than charting a bogus spike.
        const double rate =
            secs > 0 ? std::max(0.0, ops - last_ops[i]) / secs : 0.0;
        ops_rate[i].push_back(rate);
        if (ops_rate[i].size() > kKeep) ops_rate[i].erase(ops_rate[i].begin());
      }
      last_ops[i] = ops;
      last_at[i] = now;
      p99[i].push_back(sm->number_or("latency_p99", 0));
      if (p99[i].size() > kKeep) p99[i].erase(p99[i].begin());
    }
  }
};

std::string ids_of(const Json* arr) {
  if (arr == nullptr || !arr->is_array() || arr->items().empty()) return "-";
  std::string out;
  for (const Json& v : arr->items()) {
    if (!out.empty()) out += ",";
    out += std::to_string(v.integer());
  }
  return out;
}

std::string pad(std::string s, std::size_t w) {
  // Sparklines are multi-byte but single-column; pad by display width.
  std::size_t cols = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if ((s[i] & 0xC0) != 0x80) ++cols;
  }
  while (cols++ < w) s += ' ';
  return s;
}

void render(const Json& snap, const std::vector<hds::net::UdpEndpoint>& nodes, bool clear,
            const SmrHistory* hist = nullptr) {
  std::string out;
  if (clear) out += "\x1b[2J\x1b[H";
  out += "hds_top — " + std::to_string(static_cast<std::int64_t>(snap.number_or("reporting", 0))) +
         "/" + std::to_string(nodes.size()) + " reporting";
  if (const Json* lead = snap.find("leader")) {
    out += snap.find("leaders_agree")->boolean() ? "   HΩ leader: " : "   HΩ leader (split): ";
    out += std::to_string(lead->integer());
  }
  if (const Json* ad = snap.find("all_decided")) {
    out += ad->boolean() ? "   consensus: DECIDED" : "   consensus: in progress";
    if (const Json* v = snap.find("value")) out += " (" + std::to_string(v->integer()) + ")";
  }
  out += "\n\n";
  out += pad("node", 6) + pad("id", 4) + pad("lead", 6) + pad("round", 7) + pad("decided", 9) +
         pad("trusted", 16) + pad("suspected", 11) + pad("drops", 7) + pad("events", 10) +
         pad("flaps", 10) + "mistake\n";
  const Json* per_node = snap.find("nodes");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Json* st = per_node != nullptr ? per_node->find(std::to_string(i)) : nullptr;
    std::string row = pad(std::to_string(i), 6);
    if (st == nullptr || st->find("error") != nullptr) {
      row += "(no response)";
      out += row + "\n";
      continue;
    }
    row += pad(std::to_string(static_cast<std::int64_t>(st->number_or("id", 0))), 4);
    const Json* lead = st->find("leader");
    std::string lead_s = lead != nullptr ? std::to_string(lead->integer()) : "-";
    if (const Json* m = st->find("multiplicity")) lead_s += "x" + std::to_string(m->integer());
    row += pad(lead_s, 6);
    const Json* dec = st->find("decided");
    std::string round = "-";
    if (const Json* r = st->find("round")) round = std::to_string(r->integer());
    else if (const Json* pr = st->find("poll_round")) round = std::to_string(pr->integer());
    row += pad(round, 7);
    std::string dec_s = dec == nullptr ? "-" : (dec->boolean() ? "yes" : "no");
    if (dec != nullptr && dec->boolean()) {
      if (const Json* v = st->find("value")) dec_s += " " + std::to_string(v->integer());
    }
    row += pad(dec_s, 9);
    row += pad(ids_of(st->find("trusted")), 16);
    row += pad(ids_of(st->find("suspected")), 11);
    row += pad(std::to_string(static_cast<std::int64_t>(st->number_or("trace_dropped", 0))), 7);
    const Json* qos = st->find("qos");
    row += pad(sparkline(qos != nullptr ? qos->find("events") : nullptr), 10);
    row += pad(sparkline(qos != nullptr ? qos->find("flaps") : nullptr), 10);
    row += sparkline(qos != nullptr ? qos->find("mistake_time") : nullptr);
    out += row + "\n";
  }
  // Replicated-log panel, present whenever any node reports an smr body.
  if (const Json* agg = snap.find("smr")) {
    out += "\nreplicated log — ";
    if (agg->find("hashes_agree")->boolean()) {
      out += "log hash AGREED " + agg->string_or("log_hash", "");
    } else {
      out += "log hash SPLIT (frontiers may be catching up)";
    }
    out += "   total client ops: " +
           std::to_string(static_cast<std::int64_t>(agg->number_or("ops_total", 0)));
    out += "\n\n";
    out += pad("node", 6) + pad("role", 6) + pad("epoch", 7) + pad("applied", 9) +
           pad("committed", 11) + pad("ops", 8) + pad("batches", 9) +
           pad("ops/s", 10) + pad("p99", 10) + "log hash\n";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Json* st = per_node != nullptr ? per_node->find(std::to_string(i)) : nullptr;
      const Json* sm = st != nullptr ? st->find("smr") : nullptr;
      std::string row = pad(std::to_string(i), 6);
      if (sm == nullptr) {
        row += "(no smr status)";
        out += row + "\n";
        continue;
      }
      const Json* leading = sm->find("leading");
      row += pad(leading != nullptr && leading->boolean() ? "lead" : "foll", 6);
      row += pad(std::to_string(static_cast<std::int64_t>(sm->number_or("epoch", 0))), 7);
      row += pad(std::to_string(static_cast<std::int64_t>(sm->number_or("applied_through", -1))), 9);
      row += pad(std::to_string(static_cast<std::int64_t>(sm->number_or("committed_through", -1))), 11);
      row += pad(std::to_string(static_cast<std::int64_t>(sm->number_or("ops_done", 0))), 8);
      row += pad(std::to_string(static_cast<std::int64_t>(sm->number_or("batches_committed", 0))), 9);
      row += pad(hist != nullptr && i < hist->ops_rate.size() ? sparkline(hist->ops_rate[i]) : "·", 10);
      row += pad(hist != nullptr && i < hist->p99.size() ? sparkline(hist->p99[i]) : "·", 10);
      row += sm->string_or("log_hash", "-");
      out += row + "\n";
    }
  }
  std::cout << out << std::flush;
}

int run(const Options& o) {
  const auto start = std::chrono::steady_clock::now();
  const auto hard_deadline = o.timeout_ms >= 0
                                 ? start + std::chrono::milliseconds(o.timeout_ms)
                                 : std::chrono::steady_clock::time_point::max();
  const auto deadline =
      std::min(start + std::chrono::milliseconds(o.wait_ms), hard_deadline);
  std::vector<hds::net::UdpEndpoint> nodes = o.nodes;
  while (nodes.empty()) {
    nodes = endpoints_from_dir(o.cluster_dir);
    if (!nodes.empty()) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      std::cerr << "hds_top: no complete admin_endpoints.json in " << o.cluster_dir << "\n";
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  hds::net::AdminClient client;
  SmrHistory hist(nodes.size());
  if (o.once) {
    Json snap = take_snapshot(nodes, client, o.rpc_timeout_ms, hard_deadline);
    hist.update(snap);
    while (!snap.find("complete")->boolean() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      snap = take_snapshot(nodes, client, o.rpc_timeout_ms, hard_deadline);
      hist.update(snap);
    }
    if (!snap.find("complete")->boolean()) {
      const Json* miss = snap.find("missing");
      if (miss != nullptr && !miss->items().empty()) {
        std::cerr << "hds_top: deadline with " << miss->items().size()
                  << " node(s) never reporting: " << miss->dump() << "\n";
      }
    }
    if (o.json) {
      std::cout << snap.dump() << "\n";
    } else {
      render(snap, nodes, false, &hist);
    }
    return snap.find("complete")->boolean() ? 0 : 1;
  }

  // Interactive: refresh until interrupted (or every node stops answering —
  // the cluster is gone, no point repainting a dead board forever).
  std::size_t silent_rounds = 0;
  while (true) {
    const Json snap = take_snapshot(nodes, client, o.rpc_timeout_ms);
    hist.update(snap);
    render(snap, nodes, true, &hist);
    silent_rounds = snap.number_or("reporting", 0) == 0 ? silent_rounds + 1 : 0;
    if (silent_rounds >= 10) {
      std::cerr << "hds_top: no node has answered for 10 rounds; exiting\n";
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(o.interval_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse_args(argc, argv, o)) {
    usage(std::cerr);
    return 2;
  }
  try {
    return run(o);
  } catch (const std::exception& e) {
    std::cerr << "hds_top: " << e.what() << "\n";
    return 2;
  }
}
