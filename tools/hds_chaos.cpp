// hds_chaos — seeded fault-plan fuzzer, shrinker, and repro replayer.
//
// Modes:
//   --fuzz N          sweep N random *admissible* cases per selected stack.
//                     Every property check must pass inside the envelope;
//                     any violation is a finding: it is shrunk to a minimal
//                     failing case and written as a replayable repro JSON
//                     (schema hds-chaos-repro-v1), and the exit status is 1.
//   --demo-violation PATH
//                     build the deliberately inadmissible demo case (a
//                     never-healing partition against the synchronous
//                     Fig. 9 stack), verify the spec checkers catch it,
//                     shrink it (expect <= 3 clauses), write the repro to
//                     PATH and verify it replays. Exit 0 on success.
//   --replay FILE...  re-run committed repro files; exit 0 iff every one
//                     reproduces its recorded violation tags exactly. Each
//                     replay runs with the causal trace ring on and prints
//                     the message ancestry (obs::causal_chain) of the
//                     violation — or, for a wedged run, of the last
//                     delivery/timer frontier the system was spinning on.
//                     --trace-capacity N sizes the ring (0 disables chains).
//
// Determinism: cases are generated from --seed-base and run on their own
// embedded seeds; the simulator is a pure function of the case, so CI can
// pin seeds and replays are exact.
#include <iostream>
#include <string>
#include <vector>

#include "chaos/runner.h"
#include "chaos/shrink.h"
#include "common/rng.h"
#include "exp/runner.h"
#include "obs/causal.h"
#include "obs/json.h"

namespace {

using hds::Rng;
using hds::chaos::ChaosCase;
using hds::chaos::ChaosOutcome;
using hds::chaos::StackKind;

void usage(std::ostream& os) {
  os << "usage: hds_chaos --fuzz N [--stack all|fig6|fig8|fig9|smr] [--seed-base S]\n"
        "                 [--out PATH] [-j N | --jobs N] [--shards K]\n"
        "-j 0 means one worker per hardware thread. Case k is generated from\n"
        "Rng::derived(seed-base, k), so the explored set and any reported\n"
        "finding are identical for every -j\n"
        "--shards K is forwarded to the engine; injector-backed runs are\n"
        "forced onto one shard by the harness, so bytes never change\n"
        "       hds_chaos --demo-violation PATH\n"
        "       hds_chaos --replay [--trace-capacity N] FILE [FILE...]\n"
        "exit status: 0 clean, 1 violation found / replay mismatch, 2 usage error\n";
}

std::vector<StackKind> stacks_of(const std::string& sel) {
  if (sel == "all") return {StackKind::kFig6, StackKind::kFig8, StackKind::kFig9, StackKind::kSmr};
  return {hds::chaos::stack_from_name(sel)};
}

std::string join(const std::vector<std::string>& v, const char* sep) {
  std::string out;
  for (const std::string& s : v) {
    if (!out.empty()) out += sep;
    out += s;
  }
  return out;
}

int run_fuzz(std::size_t budget, const std::string& stack_sel, std::uint64_t seed_base,
             const std::string& out_path, std::size_t jobs, std::size_t shards) {
  const std::vector<StackKind> stacks = stacks_of(stack_sel);
  const std::size_t tasks = budget * stacks.size();

  // Task t covers case t/|stacks| of stack t%|stacks|, generated from
  // Rng::derived(seed_base, t): every task is a pure function of
  // (seed_base, t), so the explored set — and any finding — is identical
  // for every -j and every thread interleaving. All tasks run to completion
  // and the lowest-index violation is reported, which keeps the selected
  // repro deterministic too.
  struct TaskResult {
    bool ok = true;
    ChaosCase c;
    std::vector<std::string> violations;
  };
  const std::vector<TaskResult> results =
      hds::exp::run_collect(tasks, jobs, [&](std::size_t t) {
        TaskResult r;
        Rng rng = Rng::derived(seed_base, t);
        r.c = hds::chaos::random_admissible_case(rng, stacks[t % stacks.size()]);
        const ChaosOutcome out = hds::chaos::run_chaos_case(r.c, /*trace_capacity=*/0, shards);
        r.ok = out.ok;
        r.violations = out.violations;
        return r;
      });

  for (std::size_t t = 0; t < results.size(); ++t) {
    const TaskResult& r = results[t];
    if (r.ok) continue;
    std::cerr << "VIOLATION in admissible case (stack=" << hds::chaos::stack_name(r.c.stack)
              << ", case " << t + 1 << "):\n";
    for (const std::string& v : r.violations) std::cerr << "  " << v << "\n";
    std::cerr << "shrinking...\n";
    const hds::chaos::ShrinkResult sh = hds::chaos::shrink_case(r.c);
    std::cerr << "shrunk to " << sh.reduced.plan.clauses.size() << " clause(s) in " << sh.runs
              << " runs; tags: " << join(sh.outcome.violation_tags(), ", ") << "\n";
    const std::string path = out_path.empty() ? "chaos_repro.json" : out_path;
    hds::obs::write_text_file(path,
                              hds::chaos::repro_to_json(sh.reduced, sh.outcome).dump(2) + "\n");
    std::cerr << "repro written to " << path << "\n";
    return 1;
  }
  std::cout << "fuzz: " << tasks << " admissible case(s) ran clean (stacks=" << stack_sel
            << ", seed-base=" << seed_base << ", jobs=" << jobs << ")\n";
  return 0;
}

int run_demo(const std::string& out_path) {
  const ChaosCase demo = hds::chaos::violation_demo_case();
  const ChaosOutcome out = hds::chaos::run_chaos_case(demo);
  if (out.ok) {
    std::cerr << "demo-violation: the demo case unexpectedly passed every check\n";
    return 1;
  }
  std::cout << "demo violation caught (" << out.violations.size() << " violation(s); tags: "
            << join(out.violation_tags(), ", ") << ")\n";
  const hds::chaos::ShrinkResult sh = hds::chaos::shrink_case(demo);
  std::cout << "shrunk " << demo.plan.clauses.size() << " -> " << sh.reduced.plan.clauses.size()
            << " clause(s) in " << sh.runs << " runs\n";
  if (sh.reduced.plan.clauses.size() > 3) {
    std::cerr << "demo-violation: shrinker left " << sh.reduced.plan.clauses.size()
              << " clauses (expected <= 3)\n";
    return 1;
  }
  hds::obs::write_text_file(out_path, hds::chaos::repro_to_json(sh.reduced, sh.outcome).dump(2) + "\n");
  // Round-trip: the written repro must replay to the same tags.
  const hds::chaos::Repro r =
      hds::chaos::parse_repro(hds::obs::load_json_file(out_path));
  const hds::chaos::ReplayResult rep = hds::chaos::replay_repro(r);
  if (!rep.match) {
    std::cerr << "demo-violation: written repro does not replay deterministically\n";
    return 1;
  }
  std::cout << "repro written to " << out_path << " and verified by replay\n";
  return 0;
}

// The causal explanation of a replayed violation: walk the lineage graph
// back from the monitor violation (or, absent one, from the last
// delivery/timer event — for a wedged run that is the quorum wait the
// system was spinning on) and print the message ancestry, indented under
// the replay line.
void print_causal_chain(const hds::chaos::ChaosOutcome& out, std::ostream& os) {
  const std::uint64_t target = hds::obs::causal_chain_target(out.trace_events);
  if (target == 0) return;
  const std::vector<hds::TraceEvent> chain = hds::obs::causal_chain(out.trace_events, target);
  if (chain.empty()) return;
  os << "  causal chain (" << chain.size() << " link(s)";
  if (out.trace_dropped > 0) os << ", ring dropped " << out.trace_dropped;
  os << "):\n";
  std::string text = hds::obs::format_causal_chain(chain);
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    os << "    " << text.substr(start, end - start) << "\n";
    start = end + 1;
  }
}

int run_replay(const std::vector<std::string>& files, std::size_t trace_capacity) {
  int status = 0;
  for (const std::string& path : files) {
    try {
      const hds::chaos::Repro r =
          hds::chaos::parse_repro(hds::obs::load_json_file(path));
      const hds::chaos::ReplayResult rep = hds::chaos::replay_repro(r, trace_capacity);
      if (rep.match) {
        std::cout << "replay OK  " << path << " (tags: " << join(r.tags, ", ") << ")\n";
        print_causal_chain(rep.outcome, std::cout);
      } else {
        std::cerr << "replay MISMATCH " << path << ": expected tags [" << join(r.tags, ", ")
                  << "], got [" << join(rep.outcome.violation_tags(), ", ") << "]\n";
        print_causal_chain(rep.outcome, std::cerr);
        status = 1;
      }
    } catch (const std::exception& e) {
      std::cerr << "replay ERROR " << path << ": " << e.what() << "\n";
      status = 1;
    }
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::size_t fuzz = 0;
  std::size_t jobs = 1;
  std::string stack_sel = "all";
  std::uint64_t seed_base = 1;
  std::string out_path;
  std::string demo_path;
  std::vector<std::string> replay_files;
  bool replay_mode = false;
  std::size_t trace_capacity = std::size_t{1} << 16;
  std::size_t shards = 1;

  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& flag = args[i];
      auto next = [&]() -> const std::string& {
        if (i + 1 >= args.size()) throw std::invalid_argument(flag + " needs a value");
        return args[++i];
      };
      if (flag == "--fuzz") {
        fuzz = std::stoul(next());
      } else if (flag == "--stack") {
        stack_sel = next();
      } else if (flag == "--seed-base") {
        seed_base = std::stoull(next());
      } else if (flag == "--out") {
        out_path = next();
      } else if (flag == "-j" || flag == "--jobs") {
        jobs = std::stoul(next());
        if (jobs == 0) jobs = hds::exp::default_jobs();
      } else if (flag == "--demo-violation") {
        demo_path = next();
      } else if (flag == "--replay") {
        replay_mode = true;
      } else if (flag == "--trace-capacity") {
        trace_capacity = std::stoul(next());
      } else if (flag == "--shards") {
        shards = std::stoul(next());
        if (shards == 0) shards = 1;
      } else if (flag == "--help" || flag == "-h") {
        usage(std::cout);
        return 0;
      } else if (replay_mode) {
        replay_files.push_back(flag);
      } else {
        throw std::invalid_argument("unknown flag " + flag);
      }
    }
    if (replay_mode) {
      if (replay_files.empty()) throw std::invalid_argument("--replay needs files");
      return run_replay(replay_files, trace_capacity);
    }
    if (!demo_path.empty()) return run_demo(demo_path);
    if (fuzz > 0) return run_fuzz(fuzz, stack_sel, seed_base, out_path, jobs, shards);
    usage(std::cerr);
    return 2;
  } catch (const std::invalid_argument& e) {
    std::cerr << "hds_chaos: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "hds_chaos: " << e.what() << "\n";
    return 1;
  }
}
