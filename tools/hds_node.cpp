// hds_node — one process of a real UDP deployment.
//
//   hds_node --config node.json
//
// The config (schema hds-node-config-v1, loaded with the same
// obs::load_json_file helper as hds_chaos/hds_report) describes the whole
// cluster and which slot this process occupies:
//
//   {
//     "schema": "hds-node-config-v1",
//     "self": 0,                       // index into peers
//     "stack": "fig8",                 // fig6 | fig7 | fig8 | fig9 | smr
//     "peers": [{"id": 1, "host": "127.0.0.1", "port": 9101}, ...],
//     "seed": 1,
//     "proposal": 100,                 // consensus stacks; default 100+self
//     "t_known": 1,                    // fig8's t parameter
//     "step_len_ms": 30,               // HΣ step length (fig7/fig9)
//     "run_for_ms": 2000,              // observation window (fig6/fig7)
//     "settle_ms": 750,                // fig6: report only after the ◊HΩ
//                                      // output was stable this long
//     "trace": false,                  // fig6: dump trusted/timeout traces
//     "max_time_ms": 60000,            // decision deadline (fig8/fig9)
//     "barrier_timeout_ms": 15000,
//     "linger_ms": 300,                // stay alive after deciding so
//                                      // laggard peers still hear us
//     "batching": true,
//     "flush_interval_ms": 1,
//     "metrics_json": "node0_metrics.json",  // optional registry dump
//     "trace_capacity": 65536,         // > 0 enables causal tracing
//     "admin_host": "127.0.0.1",       // launcher telemetry sink; with
//     "admin_port": 9200,              // trace_capacity > 0 the node streams
//                                      // hds-telemetry-v1 deltas there
//     "telemetry_interval_ms": 200,    // delta cadence
//     "admin_listen_port": 0,          // serve hds-admin-v1 (STATS/STATUS)
//                                      // on this port; 0 = ephemeral, bound
//                                      // port announced via telemetry deltas;
//                                      // key absent = no admin server
//     "admin_port_file": "n0.port",    // optional: write the bound port here
//     "qos_window_ms": 250,            // streaming QoS sub-window width
//     "qos_windows": 8,                // ...and ring size
//     "profile": false,                // in-process profiler; collapsed
//     "profile_out": "n0.folded",      // stacks written here at exit
//     "reliable": false,               // per-link ARQ layer (net/reliable.h)
//     "loss": 0.0,                     // symmetric Bernoulli copy loss on
//                                      // every inter-node link (test rig)
//     "epoch": 0,                      // incarnation number; a supervised
//                                      // respawn gets epoch+1 and rejoins
//                                      // via REJOIN instead of HELLO
//     "redecide_ms": 250,              // fig8 DECIDE rebroadcast period so
//                                      // a respawned slot still terminates;
//                                      // defaults to 250 when reliable,
//                                      // else 0 (off)
//     "clients": 8,                    // smr: closed-loop clients per node
//     "op_size": 0,                    // smr: payload padding bytes per op
//     "smr_batch_ms": 5,               // smr: leader flush period
//     "smr_ack_ms": 25,                // smr: cumulative ack period
//     "smr_lease_ms": 20               // smr: HΩ lease re-evaluation period
//   }
//
// On success the last stdout line is a one-line result JSON
// (schema hds-node-result-v1); the cluster launcher parses it.
// Exit: 0 result produced, 1 run failed (no decision / barrier timeout),
// 2 usage or config error. A barrier timeout still flushes a final
// telemetry delta so the launcher gets partial accounting from a wedged
// slot.
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/link_fault.h"
#include "common/rng.h"
#include "consensus/majority_homega.h"
#include "consensus/quorum_homega_hsigma.h"
#include "fd/impl/hsigma_sync.h"
#include "fd/impl/ohp_polling.h"
#include "net/admin.h"
#include "net/net_system.h"
#include "net/udp.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/prom.h"
#include "obs/telemetry.h"
#include "obs/window_qos.h"
#include "sim/stacked_process.h"
#include "smr/harness.h"
#include "smr/replica.h"

namespace {

using hds::obs::Json;
using namespace std::chrono_literals;

struct NodeOptions {
  hds::net::NetConfig net;
  std::string stack = "fig8";
  hds::Value proposal = 0;
  std::size_t t_known = 0;
  hds::SimTime step_len_ms = 30;
  hds::SimTime run_for_ms = 2000;
  hds::SimTime settle_ms = 750;
  bool trace = false;
  hds::SimTime max_time_ms = 60000;
  hds::SimTime barrier_timeout_ms = 15000;
  hds::SimTime linger_ms = 300;
  std::string metrics_json;
  std::string admin_host = "127.0.0.1";
  std::uint16_t admin_port = 0;  // 0 = no telemetry uplink
  hds::SimTime telemetry_interval_ms = 200;
  bool admin_listen = false;            // serve hds-admin-v1?
  std::uint16_t admin_listen_port = 0;  // 0 = ephemeral
  std::string admin_port_file;
  hds::SimTime qos_window_ms = 250;
  std::size_t qos_windows = 8;
  bool profile = false;
  std::string profile_out;
  double loss = 0.0;
  hds::SimTime redecide_ms = 0;
  std::size_t clients = 8;
  std::size_t op_size = 0;
  hds::SimTime smr_batch_ms = 5;
  hds::SimTime smr_ack_ms = 25;
  hds::SimTime smr_lease_ms = 20;
};

// Symmetric Bernoulli loss on every inter-node copy. Seeded and internally
// synchronized per the LinkInterposer contract. REL_ACK and retransmission
// copies are judged like any other traffic — the ARQ layer has to survive
// losing its own acks too.
class SymmetricLoss final : public hds::LinkInterposer {
 public:
  SymmetricLoss(double p, std::uint64_t seed) : p_(p), rng_(seed) {}

  hds::CopyVerdict on_copy(hds::SimTime, hds::ProcIndex from, hds::ProcIndex to,
                           const std::string&) override {
    if (from == to) return {};
    std::lock_guard<std::mutex> lk(mu_);
    hds::CopyVerdict v;
    v.drop = rng_.chance(p_);
    return v;
  }

 private:
  double p_;
  std::mutex mu_;
  hds::Rng rng_;
};

NodeOptions parse_config(const Json& cfg) {
  if (cfg.string_or("schema", "") != "hds-node-config-v1") {
    throw std::runtime_error("config: expected schema hds-node-config-v1");
  }
  NodeOptions o;
  o.net.self = static_cast<hds::ProcIndex>(cfg.number_or("self", 0));
  const Json* peers = cfg.find("peers");
  if (peers == nullptr || !peers->is_array() || peers->items().empty()) {
    throw std::runtime_error("config: peers array required");
  }
  for (const Json& p : peers->items()) {
    hds::net::NetPeer peer;
    peer.id = static_cast<hds::Id>(p.number_or("id", 0));
    peer.ep.host = p.string_or("host", "127.0.0.1");
    peer.ep.port = static_cast<std::uint16_t>(p.number_or("port", 0));
    o.net.peers.push_back(peer);
  }
  if (o.net.self >= o.net.peers.size()) throw std::runtime_error("config: self out of range");
  o.net.seed = static_cast<std::uint64_t>(cfg.number_or("seed", 1));
  if (const Json* b = cfg.find("batching")) o.net.batching = b->boolean();
  o.net.flush_interval_ms = static_cast<hds::SimTime>(cfg.number_or("flush_interval_ms", 1));
  o.stack = cfg.string_or("stack", "fig8");
  o.proposal =
      static_cast<hds::Value>(cfg.number_or("proposal", 100 + static_cast<double>(o.net.self)));
  o.t_known = static_cast<std::size_t>(cfg.number_or("t_known", 0));
  o.step_len_ms = static_cast<hds::SimTime>(cfg.number_or("step_len_ms", 30));
  o.run_for_ms = static_cast<hds::SimTime>(cfg.number_or("run_for_ms", 2000));
  o.settle_ms = static_cast<hds::SimTime>(cfg.number_or("settle_ms", 750));
  if (const Json* tr = cfg.find("trace")) o.trace = tr->boolean();
  o.max_time_ms = static_cast<hds::SimTime>(cfg.number_or("max_time_ms", 60000));
  o.barrier_timeout_ms =
      static_cast<hds::SimTime>(cfg.number_or("barrier_timeout_ms", 15000));
  o.linger_ms = static_cast<hds::SimTime>(cfg.number_or("linger_ms", 300));
  o.metrics_json = cfg.string_or("metrics_json", "");
  o.net.trace_capacity = static_cast<std::size_t>(cfg.number_or("trace_capacity", 0));
  o.admin_host = cfg.string_or("admin_host", "127.0.0.1");
  o.admin_port = static_cast<std::uint16_t>(cfg.number_or("admin_port", 0));
  o.telemetry_interval_ms =
      static_cast<hds::SimTime>(cfg.number_or("telemetry_interval_ms", 200));
  if (const Json* ap = cfg.find("admin_listen_port")) {
    o.admin_listen = true;
    o.admin_listen_port = static_cast<std::uint16_t>(ap->integer());
  }
  o.admin_port_file = cfg.string_or("admin_port_file", "");
  o.qos_window_ms = static_cast<hds::SimTime>(cfg.number_or("qos_window_ms", 250));
  o.qos_windows = static_cast<std::size_t>(cfg.number_or("qos_windows", 8));
  if (const Json* pr = cfg.find("profile")) o.profile = pr->boolean();
  o.profile_out = cfg.string_or("profile_out", "");
  if (const Json* rel = cfg.find("reliable")) o.net.reliability.enabled = rel->boolean();
  o.loss = cfg.number_or("loss", 0.0);
  if (o.loss < 0.0 || o.loss >= 1.0) throw std::runtime_error("config: loss must be in [0, 1)");
  o.net.epoch = static_cast<std::uint64_t>(cfg.number_or("epoch", 0));
  o.redecide_ms = static_cast<hds::SimTime>(
      cfg.number_or("redecide_ms", o.net.reliability.enabled ? 250 : 0));
  o.clients = static_cast<std::size_t>(cfg.number_or("clients", 8));
  o.op_size = static_cast<std::size_t>(cfg.number_or("op_size", 0));
  o.smr_batch_ms = static_cast<hds::SimTime>(cfg.number_or("smr_batch_ms", 5));
  o.smr_ack_ms = static_cast<hds::SimTime>(cfg.number_or("smr_ack_ms", 25));
  o.smr_lease_ms = static_cast<hds::SimTime>(cfg.number_or("smr_lease_ms", 20));
  return o;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

Json stats_json(const hds::net::NetNetworkStats& s) {
  Json j = Json::object();
  j["broadcasts"] = s.broadcasts;
  j["copies_sent"] = s.copies_sent;
  j["copies_delivered"] = s.copies_delivered;
  j["copies_lost_link"] = s.copies_lost_link;
  j["bytes_sent"] = s.bytes_sent;
  j["bytes_received"] = s.bytes_received;
  j["packets_sent"] = s.packets_sent;
  j["packets_received"] = s.packets_received;
  j["decode_errors"] = s.decode_errors;
  return j;
}

Json rel_stats_json(const hds::net::RelStats& r) {
  Json j = Json::object();
  j["data_sent"] = r.data_sent;
  j["retransmits"] = r.retransmits;
  j["acked"] = r.acked;
  j["window_drops"] = r.window_drops;
  j["reorder_drops"] = r.reorder_drops;
  j["acks_sent"] = r.acks_sent;
  j["acks_received"] = r.acks_received;
  j["dup_frames"] = r.dup_frames;
  j["out_of_order"] = r.out_of_order;
  j["skipped_lost"] = r.skipped_lost;
  j["delivered"] = r.delivered;
  j["stale_epoch_drops"] = r.stale_epoch_drops;
  j["epoch_flushes"] = r.epoch_flushes;
  j["requeued"] = r.requeued;
  return j;
}

int run(const NodeOptions& o) {
  const auto proc_start = std::chrono::steady_clock::now();
  hds::obs::MetricsRegistry metrics;
  hds::obs::MetricsRegistry* metrics_ptr = &metrics;
  if (o.profile) hds::obs::Profiler::instance().enable();

  // Streaming QoS over the local FD output. Ground truth on a live cluster
  // is "everyone in the config, nobody crashes": detection latency stays
  // inert and the mistake estimator reads as raw suspicion activity, while
  // the flap and quorum-margin windows are fully meaningful. Declared before
  // the system so the FD components never outlive their listener.
  hds::obs::WindowQosConfig qcfg;
  for (const hds::net::NetPeer& peer : o.net.peers) {
    qcfg.gt.ids.push_back(peer.id);
    qcfg.gt.correct.push_back(true);
  }
  const std::vector<hds::Id> all_node_ids = qcfg.gt.ids;
  qcfg.width = o.qos_window_ms;
  qcfg.windows = o.qos_windows;
  qcfg.metrics = metrics_ptr;
  hds::obs::WindowQos wq(std::move(qcfg));

  hds::net::NetConfig net_cfg = o.net;
  net_cfg.metrics = metrics_ptr;
  hds::net::NetSystem sys(std::move(net_cfg));
  const std::size_t n = sys.n();
  const hds::ProcIndex self = sys.self();

  // Loss rig: installed before any data-plane traffic so every copy —
  // first sends, ARQ retransmits, standalone acks — rolls the same dice.
  // HELLO/REJOIN barrier probes bypass interposers by design, so the
  // cluster still forms under heavy loss.
  std::unique_ptr<SymmetricLoss> loss;
  if (o.loss > 0.0) {
    loss = std::make_unique<SymmetricLoss>(o.loss, o.net.seed ^ 0x10551055u);
    sys.set_interposer(loss.get());
  }

  // Assemble the selected stack. Raw pointers stay valid: the system owns
  // the StackedProcess, which owns its components.
  hds::OHPPolling* ohp = nullptr;
  hds::HSigmaComponent* hsig = nullptr;
  hds::MajorityHOmegaConsensus* cons8 = nullptr;
  hds::QuorumConsensus* cons9 = nullptr;
  hds::smr::SmrReplica* smr = nullptr;
  auto stack = std::make_unique<hds::StackedProcess>();
  if (o.stack == "fig6") {
    ohp = stack->add(std::make_unique<hds::OHPPolling>());
  } else if (o.stack == "fig7") {
    hsig = stack->add(std::make_unique<hds::HSigmaComponent>(o.step_len_ms));
  } else if (o.stack == "fig8") {
    ohp = stack->add(std::make_unique<hds::OHPPolling>());
    hds::MajorityConsensusConfig ccfg;
    ccfg.n = n;
    ccfg.t = o.t_known;
    ccfg.proposal = o.proposal;
    ccfg.guard_poll = 5;
    ccfg.redecide_interval_ms = o.redecide_ms;
    cons8 = stack->add(std::make_unique<hds::MajorityHOmegaConsensus>(ccfg, *ohp));
  } else if (o.stack == "fig9") {
    ohp = stack->add(std::make_unique<hds::OHPPolling>());
    hsig = stack->add(std::make_unique<hds::HSigmaComponent>(o.step_len_ms));
    cons9 = stack->add(std::make_unique<hds::QuorumConsensus>(
        hds::QuorumConsensusConfig{o.proposal, 5}, *ohp, *hsig));
  } else if (o.stack == "smr") {
    ohp = stack->add(std::make_unique<hds::OHPPolling>());
    hds::smr::SmrConfig scfg;
    scfg.n = n;
    scfg.t = o.t_known;
    scfg.replica = self;
    scfg.batch_interval = o.smr_batch_ms;
    scfg.ack_interval = o.smr_ack_ms;
    scfg.lease_poll = o.smr_lease_ms;
    scfg.guard_poll = 5;
    hds::smr::WorkloadConfig wcfg;
    wcfg.clients = o.clients;
    wcfg.op_size = o.op_size;
    wcfg.seed = o.net.seed;
    smr = stack->add(std::make_unique<hds::smr::SmrReplica>(scfg, *ohp, wcfg));
  } else {
    throw std::runtime_error("config: unknown stack " + o.stack);
  }
  if (ohp != nullptr) ohp->attach_metrics(metrics_ptr);
  if (hsig != nullptr) hsig->attach_metrics(metrics_ptr);
  if (cons8 != nullptr) cons8->attach_metrics(metrics_ptr);
  if (cons9 != nullptr) cons9->attach_metrics(metrics_ptr);
  if (smr != nullptr) smr->attach_metrics(metrics_ptr);
  if (ohp != nullptr) ohp->set_output_listener(wq.listener(self));
  if (hsig != nullptr) hsig->set_output_listener(wq.listener(self));
  sys.set_process(std::move(stack));

  // Pull-side health plane: the hds-admin-v1 STATS/STATUS service hds_top
  // polls. STATS is the Prometheus exposition of the full registry (window
  // QoS gauges refreshed first); STATUS is a JSON summary of FD/consensus
  // state. Handlers run on the admin thread; anything touching protocol
  // state goes through sys.query, which is only safe once the node thread
  // runs — before that, STATUS says so and skips the query.
  std::atomic<bool> node_started{false};
  hds::net::AdminServer admin;
  const auto admin_handler = [&](const std::string& verb,
                                 const hds::obs::Json&) -> std::string {
    if (verb == "STATS") {
      (void)wq.stats();  // refresh the qos_window_* gauges
      return hds::obs::prometheus_text(metrics.snapshot());
    }
    if (verb != "STATUS") throw std::runtime_error("unknown verb " + verb);
    Json st = Json::object();
    st["schema"] = "hds-node-status-v1";
    st["self"] = self;
    st["id"] = sys.id_of(self);
    st["stack"] = o.stack;
    st["epoch"] = sys.epoch();
    st["reliable"] = sys.reliable();
    const bool started = node_started.load(std::memory_order_acquire);
    st["running"] = started;
    st["uptime_ms"] = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - proc_start)
                          .count();
    if (started && ohp != nullptr) {
      struct FdObs {
        hds::HOmegaOut lead;
        hds::Multiset<hds::Id> trusted;
        hds::Round round;
        hds::SimTime timeout;
      };
      const FdObs f = sys.query([&](hds::Process&) {
        return FdObs{ohp->h_omega(), ohp->h_trusted(), ohp->round(), ohp->timeout()};
      });
      st["leader"] = f.lead.leader;
      st["multiplicity"] = f.lead.multiplicity;
      Json tr = Json::array();
      for (const auto& [id, count] : f.trusted.counts()) {
        for (std::size_t k = 0; k < count; ++k) tr.push_back(id);
      }
      st["trusted"] = tr;
      // Suspected = configured identity multiset minus the trusted output.
      hds::Multiset<hds::Id> all(all_node_ids.begin(), all_node_ids.end());
      Json susp = Json::array();
      for (const auto& [id, count] : all.counts()) {
        const std::size_t have = f.trusted.multiplicity(id);
        for (std::size_t k = have; k < count; ++k) susp.push_back(id);
      }
      st["suspected"] = susp;
      st["poll_round"] = f.round;
      st["poll_timeout_ms"] = f.timeout;
    }
    if (started && (cons8 != nullptr || cons9 != nullptr)) {
      const hds::DecisionRecord d = sys.query([&](hds::Process&) {
        return cons8 != nullptr ? cons8->decision() : cons9->decision();
      });
      st["decided"] = d.decided;
      if (d.decided) {
        st["value"] = d.value;
        st["round"] = d.round;
      }
    }
    if (started && hsig != nullptr) {
      const hds::HSigmaSnapshot snap =
          sys.query([&](hds::Process&) { return hsig->snapshot(); });
      st["hsigma_labels"] = snap.labels.size();
      st["hsigma_quora"] = snap.quora.size();
    }
    if (started && smr != nullptr) {
      struct SmrObs {
        bool leading;
        std::int64_t epoch;
        std::int64_t committed;
        std::int64_t applied;
        std::uint64_t ops_applied;
        std::uint64_t ops_done;
        std::uint64_t batches;
        std::uint64_t log_hash;
        double p50;
        double p99;
      };
      const SmrObs s = sys.query([&](hds::Process&) {
        // Running commit-latency percentiles over every op this node's
        // clients have completed so far — the hds_top panel charts them.
        const std::vector<hds::SimTime>& lats = smr->workload().latencies();
        return SmrObs{smr->leading(),      smr->current_epoch(),
                      smr->committed_through(), smr->applied_through(),
                      smr->kv().ops_applied(),  smr->workload().ops_done(),
                      smr->batches_committed(), smr->kv().log_hash(),
                      hds::smr::latency_quantile(lats, 0.50),
                      hds::smr::latency_quantile(lats, 0.99)};
      });
      Json sj = Json::object();
      sj["leading"] = s.leading;
      sj["epoch"] = s.epoch;
      sj["committed_through"] = s.committed;
      sj["applied_through"] = s.applied;
      sj["ops_applied"] = s.ops_applied;
      sj["ops_done"] = s.ops_done;
      sj["batches_committed"] = s.batches;
      sj["log_hash"] = hex64(s.log_hash);
      sj["latency_p50"] = s.p50;
      sj["latency_p99"] = s.p99;
      st["smr"] = std::move(sj);
    }
    st["qos"] = wq.json();
    if (sys.trace_enabled()) st["trace_dropped"] = sys.trace_dropped();
    return st.dump();
  };
  if (o.admin_listen) {
    admin.start(hds::net::UdpEndpoint{"0.0.0.0", o.admin_listen_port}, admin_handler);
    std::cerr << "hds_node[" << self << "]: admin channel on port " << admin.port() << "\n";
    if (!o.admin_port_file.empty()) {
      hds::obs::write_text_file(o.admin_port_file, std::to_string(admin.port()) + "\n");
    }
  }

  // Telemetry uplink: with tracing on and an admin endpoint configured, the
  // node streams hds-telemetry-v1 deltas (trace events recorded since the
  // previous delta, plus ring-drop accounting) to the launcher over its own
  // UDP socket — fire-and-forget, like the data plane.
  const bool telemetry_on = o.admin_port != 0 && sys.trace_enabled();
  const hds::net::UdpEndpoint admin_ep{o.admin_host, o.admin_port};
  hds::net::UdpSocket admin_sock;
  if (telemetry_on) admin_sock.open(hds::net::UdpEndpoint{"127.0.0.1", 0});
  std::uint64_t tele_seq = 0;
  std::uint64_t trace_cursor = 0;
  hds::SimTime hello_done_ms = -1;
  const auto send_delta = [&](std::vector<hds::TraceEvent> evs, bool final_flush,
                              std::string metrics_snapshot) {
    hds::obs::TelemetryDelta d;
    d.node = self;
    d.id = sys.id_of(self);
    d.seq = tele_seq;
    d.final_flush = final_flush;
    d.epoch_wall_us = sys.epoch_wall_us();
    d.hello_done_ms = hello_done_ms;
    d.admin_port = admin.running() ? admin.port() : 0;
    d.dropped = sys.trace_dropped();
    d.events = std::move(evs);
    d.metrics_json = std::move(metrics_snapshot);
    for (const hds::obs::TelemetryDelta& c : hds::obs::chunk_telemetry_delta(d)) {
      const std::string text = hds::obs::telemetry_delta_to_json(c).dump();
      admin_sock.send_to(admin_ep, reinterpret_cast<const std::uint8_t*>(text.data()),
                         text.size());
      ++tele_seq;
    }
  };

  std::cerr << "hds_node[" << self << "]: bound " << o.net.peers[self].ep.host << ":"
            << sys.local_port() << ", awaiting " << (n - 1) << " peer(s)\n";
  // Pre-barrier announcement: even if this slot is later killed while the
  // barrier is still forming, the launcher has its epoch and identity.
  if (telemetry_on) send_delta({}, false, {});
  if (!sys.await_peers(std::chrono::milliseconds(o.barrier_timeout_ms))) {
    std::cerr << "hds_node[" << self << "]: peer barrier timed out\n";
    // Partial telemetry: the launcher still learns this slot's epoch and
    // whatever the trace captured before the barrier wedged.
    if (telemetry_on) send_delta(sys.drain_trace(trace_cursor), true, metrics.to_json());
    return 1;
  }
  const auto wall_us = [] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  };
  hello_done_ms = (wall_us() - sys.epoch_wall_us()) / 1000;
  const auto t0 = std::chrono::steady_clock::now();
  sys.start();
  node_started.store(true, std::memory_order_release);

  std::atomic<bool> tele_stop{false};
  std::thread tele_thread;
  if (telemetry_on) {
    // Epoch/barrier announcement, then periodic deltas from a dedicated
    // thread until the run winds down.
    send_delta({}, false, {});
    tele_thread = std::thread([&] {
      while (!tele_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(o.telemetry_interval_ms));
        send_delta(sys.drain_trace(trace_cursor), false, {});
      }
    });
  }

  Json result = Json::object();
  result["schema"] = "hds-node-result-v1";
  result["stack"] = o.stack;
  result["self"] = self;
  result["id"] = sys.id_of(self);
  bool ok = true;

  if (cons8 != nullptr || cons9 != nullptr) {
    const auto decided = [&] {
      return sys.query([&](hds::Process&) {
        return cons8 != nullptr ? cons8->decision() : cons9->decision();
      });
    };
    ok = sys.wait_for([&] { return decided().decided; },
                      std::chrono::milliseconds(o.max_time_ms), 10ms);
    const hds::DecisionRecord d = decided();
    result["decided"] = d.decided;
    if (d.decided) {
      result["value"] = d.value;
      result["round"] = d.round;
    }
    if (!ok) std::cerr << "hds_node[" << self << "]: no decision within deadline\n";
    // Keep the substrate up briefly so peers still mid-protocol hear our
    // final phase/DECIDE messages (UDP has no retransmission).
    if (ok && o.linger_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(o.linger_ms));
  } else if (smr != nullptr) {
    // Replicated log: closed-loop client load for run_for_ms, then quiesce
    // until the local log settles (applied caught up with committed and the
    // (frontier, hash) pair stable for settle_ms), linger so every peer
    // drains too, and report the post-linger state. The launcher compares
    // frontiers and hashes ACROSS nodes; a node alone can only certify
    // that it stopped moving.
    std::this_thread::sleep_for(std::chrono::milliseconds(o.run_for_ms));
    sys.query([&](hds::Process&) {
      smr->stop_workload();
      return 0;
    });
    struct SmrObs {
      std::int64_t committed;
      std::int64_t applied;
      std::uint64_t log_hash;
      bool operator==(const SmrObs&) const = default;
    };
    const auto observe = [&] {
      return sys.query([&](hds::Process&) {
        return SmrObs{smr->committed_through(), smr->applied_through(), smr->kv().log_hash()};
      });
    };
    const auto deadline = t0 + std::chrono::milliseconds(o.max_time_ms);
    const auto settle = [&](std::chrono::steady_clock::time_point until) {
      SmrObs cur = observe();
      auto last_change = std::chrono::steady_clock::now();
      auto now = last_change;
      bool settled = false;
      while (!settled && now < until) {
        std::this_thread::sleep_for(25ms);
        now = std::chrono::steady_clock::now();
        const SmrObs next = observe();
        if (!(next == cur)) last_change = now;
        cur = next;
        settled = cur.applied == cur.committed && cur.applied > 0 &&
                  now - last_change >= std::chrono::milliseconds(o.settle_ms);
      }
      return std::make_pair(cur, settled);
    };
    if (!settle(deadline).second)
      std::cerr << "hds_node[" << self << "]: log did not settle\n";
    // A local lull is not cluster quiescence: under load (or with a
    // respawned peer whose run window ends later) commits keep trickling
    // after this node first holds still, and a result frozen now could be
    // an earlier — still consistent — prefix than a peer's. The linger is
    // the cross-node drain barrier (peers reach theirs within a
    // barrier-skew), so hold it with the substrate up, then re-settle and
    // report the POST-linger state.
    if (o.linger_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(o.linger_ms));
    const auto [cur, settled] =
        settle(std::max(deadline, std::chrono::steady_clock::now() +
                                      std::chrono::milliseconds(4 * o.settle_ms)));
    ok = settled;
    if (!settled) std::cerr << "hds_node[" << self << "]: log did not re-settle after linger\n";
    const auto fin = sys.query([&](hds::Process&) {
      return std::make_tuple(smr->kv().state_hash(), smr->kv().ops_applied(),
                             smr->workload().ops_done(), smr->batches_committed(),
                             smr->epochs_started(), smr->leading(), smr->current_epoch(),
                             smr->repair_appends_sent(), smr->recovery_instances());
    });
    result["applied_through"] = cur.applied;
    result["committed_through"] = cur.committed;
    result["log_hash"] = hex64(cur.log_hash);
    result["state_hash"] = hex64(std::get<0>(fin));
    result["ops_applied"] = std::get<1>(fin);
    result["ops_done"] = std::get<2>(fin);
    result["batches_committed"] = std::get<3>(fin);
    result["epochs_started"] = std::get<4>(fin);
    result["leading"] = std::get<5>(fin);
    result["smr_epoch"] = std::get<6>(fin);
    result["repair_appends"] = std::get<7>(fin);
    result["recovery_instances"] = std::get<8>(fin);
    result["settled"] = settled;
  } else if (ohp != nullptr) {
    // ◊HΩ only promises *eventual* leader agreement; on a real-jitter
    // substrate an instantaneous snapshot can catch a one-round flap while
    // the adaptive timeout is still tuning, so peers would compare
    // transients. Observe for run_for_ms, then keep sampling until the
    // output has held still for settle_ms (or max_time_ms expires).
    struct Obs {
      hds::HOmegaOut lead;
      hds::Multiset<hds::Id> trusted;
      hds::Round round;
      hds::SimTime timeout;
    };
    const auto observe = [&] {
      return sys.query([&](hds::Process&) {
        return Obs{ohp->h_omega(), ohp->h_trusted(), ohp->round(), ohp->timeout()};
      });
    };
    const auto min_end = t0 + std::chrono::milliseconds(o.run_for_ms);
    const auto deadline = t0 + std::chrono::milliseconds(o.max_time_ms);
    Obs cur = observe();
    auto last_change = std::chrono::steady_clock::now();
    auto now = last_change;
    bool settled = false;
    while (!settled && now < deadline) {
      std::this_thread::sleep_for(25ms);
      now = std::chrono::steady_clock::now();
      Obs next = observe();
      if (next.lead.leader != cur.lead.leader ||
          next.lead.multiplicity != cur.lead.multiplicity ||
          !(next.trusted == cur.trusted)) {
        last_change = now;
      }
      cur = std::move(next);
      settled = now >= min_end && now - last_change >= std::chrono::milliseconds(o.settle_ms);
    }
    ok = settled;
    if (!settled) std::cerr << "hds_node[" << self << "]: h_omega did not settle\n";
    result["leader"] = cur.lead.leader;
    result["multiplicity"] = cur.lead.multiplicity;
    result["settled"] = settled;
    result["stable_ms"] =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - last_change).count();
    result["poll_round"] = cur.round;
    result["poll_timeout_ms"] = cur.timeout;
    Json tr = Json::array();
    for (const auto& [id, count] : cur.trusted.counts()) {
      for (std::size_t k = 0; k < count; ++k) tr.push_back(id);
    }
    result["trusted"] = tr;
    if (o.trace) {
      const auto traces = sys.query([&](hds::Process&) {
        return std::make_pair(ohp->trusted_trace().points(), ohp->timeout_trace().points());
      });
      Json tt = Json::array();
      for (const auto& [t, v] : traces.first) {
        Json e = Json::object();
        e["t"] = t;
        Json ids = Json::array();
        for (const auto& [id, count] : v.counts()) {
          for (std::size_t k = 0; k < count; ++k) ids.push_back(id);
        }
        e["trusted"] = ids;
        tt.push_back(e);
      }
      result["trusted_trace"] = tt;
      Json ot = Json::array();
      for (const auto& [t, v] : traces.second) {
        Json e = Json::object();
        e["t"] = t;
        e["timeout"] = v;
        ot.push_back(e);
      }
      result["timeout_trace"] = ot;
    }
    // Peers finish their own observation windows up to a barrier-skew +
    // sample-period later than we do. Stay up and keep answering polls so a
    // peer mid-observation doesn't watch us vanish (its instantaneous
    // h_trusted would collapse to [self] right at its snapshot).
    if (o.linger_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(o.linger_ms));
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(o.run_for_ms));
    if (hsig != nullptr) {
      const hds::HSigmaSnapshot snap = sys.query([&](hds::Process&) { return hsig->snapshot(); });
      result["labels"] = snap.labels.size();
      result["quora"] = snap.quora.size();
      ok = !snap.quora.empty();
    }
    // Same shutdown courtesy as fig6: peers may still be observing.
    if (o.linger_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(o.linger_ms));
  }

  result["elapsed_ms"] = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  if (telemetry_on) {
    tele_stop.store(true, std::memory_order_relaxed);
    tele_thread.join();
    send_delta(sys.drain_trace(trace_cursor), true, metrics.to_json());
  }
  // Admin goes down before the node thread: a STATUS mid-teardown must not
  // post a query the stopped loop would never answer.
  if (o.admin_listen) {
    result["admin_port"] = admin.port();
    admin.stop();
  }
  sys.stop();
  result["stats"] = stats_json(sys.net_stats());
  result["epoch"] = sys.epoch();
  if (sys.reliable()) result["rel"] = rel_stats_json(sys.rel_stats());
  if (sys.trace_enabled()) result["trace_dropped"] = sys.trace_dropped();

  if (o.profile) {
    // Once per run: emit() increments counters, so a second call would
    // double-count. The registry dump below then carries the profile.
    hds::obs::Profiler::instance().emit(metrics_ptr);
    if (!o.profile_out.empty()) {
      hds::obs::write_text_file(o.profile_out,
                                hds::obs::Profiler::instance().collapsed_stacks());
    }
    result["profiled"] = true;
  }
  if (!o.metrics_json.empty()) {
    hds::obs::write_text_file(o.metrics_json, metrics.to_json());
  }
  std::cout << result.dump() << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      config_path = argv[++i];
    } else {
      std::cerr << "usage: hds_node --config FILE.json\n";
      return 2;
    }
  }
  if (config_path.empty()) {
    std::cerr << "usage: hds_node --config FILE.json\n";
    return 2;
  }
  try {
    return run(parse_config(hds::obs::load_json_file(config_path)));
  } catch (const std::exception& e) {
    std::cerr << "hds_node: " << e.what() << "\n";
    return 2;
  }
}
