// hds_bench_compare — direction-aware comparison of two google-benchmark
// JSON outputs (--benchmark_out=... --benchmark_out_format=json).
//
// For every benchmark present in both files it picks the right metric and
// direction automatically: items_per_second when the series reports it
// (higher is better), real_time otherwise (lower is better). A benchmark
// that got worse by more than --max-regress (default 15%) is a regression;
// --min-speedup NAME=R additionally requires the current run to beat the
// baseline by at least R× on that series (this is how CI enforces the
// engine-overhaul throughput floor against the committed old-engine
// baseline). NAME may be CURRENT@BASELINE to floor a series the baseline
// predates against an equivalent-workload reference it does contain (e.g.
// the profiler-off flood against the tracing-off flood). --require NAME
// (repeatable) demands the series exists in the current run at all — a
// gated row that silently vanishes from the bench binary is a failure, not
// a skip. Exit status: 0 clean, 1 regression / unmet floor / missing
// required row, 2 usage or unreadable input.
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using hds::obs::Json;

struct Series {
  double value = 0;
  bool higher_is_better = false;
  std::string metric;
};

std::map<std::string, Series> series_of(const Json& doc, const std::string& what) {
  const Json* benches = doc.find("benchmarks");
  if (benches == nullptr || !benches->is_array()) {
    throw std::runtime_error(what + ": no 'benchmarks' array (need --benchmark_out_format=json)");
  }
  std::map<std::string, Series> out;
  for (const Json& b : benches->items()) {
    const std::string name = b.string_or("name", "");
    if (name.empty()) continue;
    // Aggregate rows (mean/median/stddev) would double-count; plain runs
    // have no run_type or run_type == "iteration".
    const std::string run_type = b.string_or("run_type", "iteration");
    if (run_type != "iteration") continue;
    Series s;
    if (const Json* ips = b.find("items_per_second"); ips != nullptr && ips->is_number()) {
      s.value = ips->number();
      s.higher_is_better = true;
      s.metric = "items_per_second";
    } else if (const Json* rt = b.find("real_time"); rt != nullptr && rt->is_number()) {
      s.value = rt->number();
      s.higher_is_better = false;
      s.metric = "real_time";
    } else {
      continue;
    }
    out[name] = s;
  }
  return out;
}

void usage(std::ostream& os) {
  os << "usage: hds_bench_compare --baseline FILE --current FILE\n"
        "                         [--max-regress R] [--min-speedup NAME=R]...\n"
        "                         [--require NAME]...\n"
        "R is a ratio: --max-regress 0.15 tolerates 15% regression;\n"
        "--min-speedup BM_Foo=3.0 demands current >= 3x baseline on BM_Foo;\n"
        "--min-speedup BM_New@BM_Old=R floors current BM_New vs baseline BM_Old;\n"
        "--require BM_Foo fails the comparison when BM_Foo is absent from the\n"
        "current run (a dropped gated row must trip CI, not get skipped)\n"
        "exit: 0 clean, 1 regression / unmet floor / missing row, 2 usage error\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  double max_regress = 0.15;
  std::vector<std::pair<std::string, double>> floors;
  std::vector<std::string> required;

  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& flag = args[i];
      auto next = [&]() -> const std::string& {
        if (i + 1 >= args.size()) throw std::invalid_argument(flag + " needs a value");
        return args[++i];
      };
      if (flag == "--baseline") {
        baseline_path = next();
      } else if (flag == "--current") {
        current_path = next();
      } else if (flag == "--max-regress") {
        max_regress = std::stod(next());
      } else if (flag == "--min-speedup") {
        const std::string spec = next();
        const auto eq = spec.rfind('=');
        if (eq == std::string::npos) throw std::invalid_argument("--min-speedup wants NAME=R");
        floors.emplace_back(spec.substr(0, eq), std::stod(spec.substr(eq + 1)));
      } else if (flag == "--require") {
        required.push_back(next());
      } else if (flag == "--help" || flag == "-h") {
        usage(std::cout);
        return 0;
      } else {
        throw std::invalid_argument("unknown flag " + flag);
      }
    }
    if (baseline_path.empty() || current_path.empty()) {
      throw std::invalid_argument("--baseline and --current are required");
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "hds_bench_compare: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  }

  std::map<std::string, Series> base;
  std::map<std::string, Series> cur;
  try {
    base = series_of(hds::obs::load_json_file(baseline_path), baseline_path);
    cur = series_of(hds::obs::load_json_file(current_path), current_path);
  } catch (const std::exception& e) {
    std::cerr << "hds_bench_compare: " << e.what() << "\n";
    return 2;
  }

  int status = 0;
  std::cout << std::left << std::setw(56) << "benchmark" << std::right << std::setw(14)
            << "baseline" << std::setw(14) << "current" << std::setw(9) << "ratio"
            << "  verdict\n";
  for (const auto& [name, b] : base) {
    const auto it = cur.find(name);
    if (it == cur.end()) {
      std::cout << std::left << std::setw(56) << name << "  (absent from current; skipped)\n";
      continue;
    }
    const Series& c = it->second;
    // ratio > 1 always means "current is better".
    const double ratio = b.higher_is_better ? c.value / b.value : b.value / c.value;
    const bool regressed = ratio < 1.0 - max_regress;
    std::ostringstream verdict;
    if (regressed) {
      verdict << "REGRESSION (" << b.metric << ", >" << max_regress * 100 << "% worse)";
      status = 1;
    } else {
      verdict << "ok";
    }
    std::cout << std::left << std::setw(56) << name << std::right << std::setw(14)
              << std::setprecision(6) << b.value << std::setw(14) << c.value << std::setw(8)
              << std::setprecision(3) << ratio << "x  " << verdict.str() << "\n";
  }
  for (const std::string& name : required) {
    if (cur.contains(name)) continue;
    std::cerr << "hds_bench_compare: required series " << name << " absent from current run\n";
    status = 1;
  }
  for (const auto& [name, floor] : floors) {
    // CURRENT@BASELINE floors a new series against an older reference.
    const auto at = name.find('@');
    const std::string cur_name = at == std::string::npos ? name : name.substr(0, at);
    const std::string base_name = at == std::string::npos ? name : name.substr(at + 1);
    const auto bi = base.find(base_name);
    const auto ci = cur.find(cur_name);
    if (bi == base.end() || ci == cur.end()) {
      std::cerr << "hds_bench_compare: --min-speedup target " << name
                << " missing from baseline or current\n";
      status = 1;
      continue;
    }
    if (bi->second.higher_is_better != ci->second.higher_is_better) {
      std::cerr << "hds_bench_compare: --min-speedup " << name
                << " compares series with opposite metric directions\n";
      status = 1;
      continue;
    }
    const double ratio = bi->second.higher_is_better ? ci->second.value / bi->second.value
                                                     : bi->second.value / ci->second.value;
    const bool met = ratio >= floor;
    std::cout << "speedup floor " << name << ": " << std::setprecision(3) << ratio << "x vs "
              << floor << "x required — " << (met ? "met" : "NOT MET") << "\n";
    if (!met) status = 1;
  }
  return status;
}
