// trace_export — run a seeded consensus stack with observability enabled and
// export the artifacts:
//   - Chrome trace-event JSON (load in chrome://tracing or Perfetto),
//   - the JSONL event stream (jq / pandas),
//   - the metrics-registry snapshot as JSON.
//
// Examples:
//   trace_export --chrome trace.json --metrics metrics.json
//   trace_export --stack fig9 --n 6 --crashes 2 --seed 7 --jsonl events.jsonl
//   trace_export            # chrome JSON on stdout
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "consensus/harness.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"

namespace {

struct Options {
  std::string stack = "fig8";
  std::size_t n = 5;
  std::size_t crashes = 1;
  std::uint64_t seed = 1;
  std::size_t trace_capacity = 20000;
  hds::SimTime max_time = 500'000;
  std::string chrome_path;   // empty + no other sink => stdout
  std::string jsonl_path;
  std::string metrics_path;
  std::string label;
};

[[noreturn]] void usage_and_exit(int code) {
  std::cerr <<
      "usage: trace_export [options]\n"
      "  --stack fig8|fig9      consensus stack to run (default fig8)\n"
      "  --n N                  processes (default 5)\n"
      "  --crashes K            crash the last K processes (default 1)\n"
      "  --seed S               rng seed (default 1)\n"
      "  --trace-capacity C     event-ring capacity (default 20000)\n"
      "  --max-time T           simulated-time budget (default 500000)\n"
      "  --chrome PATH          write Chrome trace JSON here\n"
      "  --jsonl PATH           write the JSONL event stream here\n"
      "  --metrics PATH         write the metrics-registry JSON here\n"
      "  --label STR            run label embedded in the exports\n"
      "With no output flag, the Chrome trace JSON goes to stdout.\n";
  std::exit(code);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "trace_export: " << a << " needs a value\n";
        usage_and_exit(2);
      }
      return argv[++i];
    };
    if (a == "--stack") {
      o.stack = value();
    } else if (a == "--n") {
      o.n = std::stoul(value());
    } else if (a == "--crashes") {
      o.crashes = std::stoul(value());
    } else if (a == "--seed") {
      o.seed = std::stoull(value());
    } else if (a == "--trace-capacity") {
      o.trace_capacity = std::stoul(value());
    } else if (a == "--max-time") {
      o.max_time = std::stoll(value());
    } else if (a == "--chrome") {
      o.chrome_path = value();
    } else if (a == "--jsonl") {
      o.jsonl_path = value();
    } else if (a == "--metrics") {
      o.metrics_path = value();
    } else if (a == "--label") {
      o.label = value();
    } else if (a == "--help" || a == "-h") {
      usage_and_exit(0);
    } else {
      std::cerr << "trace_export: unknown option " << a << "\n";
      usage_and_exit(2);
    }
  }
  if (o.n < 3) {
    std::cerr << "trace_export: need --n >= 3\n";
    std::exit(2);
  }
  if (o.crashes * 2 >= o.n) {
    std::cerr << "trace_export: need a correct majority (--crashes < n/2)\n";
    std::exit(2);
  }
  if (o.stack != "fig8" && o.stack != "fig9") {
    std::cerr << "trace_export: --stack must be fig8 or fig9\n";
    std::exit(2);
  }
  return o;
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "trace_export: cannot open " << path << "\n";
    std::exit(1);
  }
  out << body;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  hds::obs::MetricsRegistry metrics;
  const std::vector<hds::Id> ids = hds::ids_unique(o.n);
  auto crashes = o.crashes > 0 ? hds::crashes_last_k(o.n, o.crashes, 60)
                               : hds::crashes_none(o.n);

  hds::ConsensusRunResult res;
  if (o.stack == "fig8") {
    hds::Fig8FullStackParams p;
    p.ids = ids;
    p.t_known = o.crashes > 0 ? o.crashes : 1;
    p.crashes = crashes;
    p.seed = o.seed;
    p.max_time = o.max_time;
    p.trace_capacity = o.trace_capacity;
    p.metrics = &metrics;
    res = hds::run_fig8_full_stack(p);
  } else {
    hds::Fig9FullStackParams p;
    p.ids = ids;
    p.crashes = crashes;
    p.seed = o.seed;
    p.max_time = o.max_time;
    p.trace_capacity = o.trace_capacity;
    p.metrics = &metrics;
    res = hds::run_fig9_full_stack(p);
  }

  hds::obs::TraceExportMeta meta;
  meta.ids = ids;
  meta.dropped = res.trace_dropped;
  std::ostringstream label;
  label << (o.label.empty() ? o.stack + " full stack" : o.label) << " n=" << o.n
        << " crashes=" << o.crashes << " seed=" << o.seed
        << " decided=" << (res.all_correct_decided ? "yes" : "no");
  meta.label = label.str();

  const bool any_file = !o.chrome_path.empty() || !o.jsonl_path.empty() || !o.metrics_path.empty();
  if (!o.chrome_path.empty()) {
    write_file(o.chrome_path, hds::obs::chrome_trace_json(res.trace_events, meta));
  }
  if (!o.jsonl_path.empty()) {
    write_file(o.jsonl_path, hds::obs::trace_jsonl(res.trace_events, meta));
  }
  if (!o.metrics_path.empty()) {
    write_file(o.metrics_path, metrics.to_json());
  }
  if (!any_file) {
    std::cout << hds::obs::chrome_trace_json(res.trace_events, meta);
  }

  std::cerr << "trace_export: " << meta.label << "; events=" << res.trace_events.size()
            << " dropped=" << res.trace_dropped << " series=" << metrics.series_count() << "\n";
  return res.all_correct_decided ? 0 : 1;
}
