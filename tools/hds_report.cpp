// hds_report — regression-aware failure-detector QoS report.
//
// Runs a seeded sweep over homonymy degrees (distinct identifiers ell among
// n processes) and, per sweep point, measures three detector families:
//   - Fig. 6 (◇HP̄ + Corollary-2 HΩ) under partial synchrony with staggered
//     crashes: detection time per crashed label, mistake intervals, leader
//     flaps/settle — with an online monitor watching the post-GST window;
//   - Fig. 7 (HΣ) in the lock-step synchronous system: quorum intersection
//     margins, liveness waits;
//   - the chosen consensus stack (--stack fig8: Fig. 6 ▸ Fig. 8 in HPS;
//     --stack fig9: Fig. 6 + Fig. 7-adapter ▸ Fig. 9 under a known bound);
//   - the replicated log (src/smr) on the HΩ-oracle substrate: closed-loop
//     client throughput, commit-latency p50/p99 and the appends-per-batch
//     fast-path ratio, all seed-deterministic and baseline-compared like
//     the detector metrics.
//
// Everything is deterministic in (n, t, delta, seed, ell), so measured
// scalars are exactly reproducible and a committed baseline
// (BENCH_qos_baseline.json) can be compared with a small tolerance that
// only forgives intentional re-baselining slack, not noise. A regression
// makes the exit status 2, which is what CI keys off.
//
// Outputs: a JSON document (schema hds-qos-report-v1), a Markdown summary
// mapping EXPERIMENTS.md claims to measured QoS numbers, and one metrics
// snapshot per sweep point.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "consensus/harness.h"
#include "exp/runner.h"
#include "obs/json.h"
#include "obs/monitor.h"
#include "obs/qos.h"
#include "smr/harness.h"

namespace {

using hds::obs::Json;

constexpr const char* kReportSchema = "hds-qos-report-v1";
constexpr const char* kBaselineSchema = "hds-qos-baseline-v1";
// Absolute slack on top of the relative tolerance: a 1-tick jitter on a
// 2-tick metric is not a regression.
constexpr double kAbsSlack = 2.0;

struct Options {
  std::string stack = "fig8";  // fig8 | fig9
  std::size_t n = 5;
  std::size_t t = 0;  // 0: derive (n-1)/2
  hds::SimTime delta = 3;
  std::uint64_t seed = 1;
  std::vector<std::size_t> ells;  // empty: {1, ceil(n/2), n}
  std::string out_dir = ".";
  std::string json_path;  // default: <out_dir>/qos_report.json
  std::string md_path;    // default: <out_dir>/qos_report.md
  std::string baseline = "BENCH_qos_baseline.json";
  bool write_baseline = false;
  double tolerance = 0.25;
  std::size_t jobs = 1;    // sweep-point parallelism; 0 = hardware concurrency
  std::size_t shards = 1;  // per-run engine shards (consensus-stack runs only)
};

void usage(std::ostream& os) {
  os << "usage: hds_report [--stack fig8|fig9] [--n N] [--t T] [--delta D]\n"
        "                  [--seed S] [--ell L1,L2,...] [--out-dir DIR]\n"
        "                  [--json PATH] [--md PATH] [--baseline PATH]\n"
        "                  [--write-baseline] [--tolerance R] [-j N | --jobs N]\n"
        "                  [--shards K]\n"
        "-j 0 means one worker per hardware thread; results are identical\n"
        "for every -j (each sweep point is an isolated, seed-derived run)\n"
        "--shards K runs the consensus-stack point on K engine shards —\n"
        "bit-identical output for every K (runs with observers stay at 1)\n"
        "exit status: 0 clean, 1 usage/run error, 2 QoS regression\n";
}

std::vector<std::size_t> parse_ells(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoul(tok));
  }
  return out;
}

bool parse_args(int argc, char** argv, Options& o) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string flag = args[i];
    std::string val;
    if (const auto eq = flag.find('='); eq != std::string::npos) {
      val = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
    }
    const auto need = [&]() -> std::string& {
      if (val.empty() && i + 1 < args.size()) val = args[++i];
      return val;
    };
    if (flag == "--stack") {
      o.stack = need();
    } else if (flag == "--n") {
      o.n = std::stoul(need());
    } else if (flag == "--t") {
      o.t = std::stoul(need());
    } else if (flag == "--delta") {
      o.delta = std::stoll(need());
    } else if (flag == "--seed") {
      o.seed = std::stoull(need());
    } else if (flag == "--ell") {
      o.ells = parse_ells(need());
    } else if (flag == "--out-dir") {
      o.out_dir = need();
    } else if (flag == "--json") {
      o.json_path = need();
    } else if (flag == "--md") {
      o.md_path = need();
    } else if (flag == "--baseline") {
      o.baseline = need();
    } else if (flag == "--write-baseline") {
      o.write_baseline = true;
    } else if (flag == "--tolerance") {
      o.tolerance = std::stod(need());
    } else if (flag == "-j" || flag == "--jobs") {
      o.jobs = std::stoul(need());
      if (o.jobs == 0) o.jobs = hds::exp::default_jobs();
    } else if (flag == "--shards") {
      o.shards = std::stoul(need());
      if (o.shards == 0) o.shards = 1;
    } else if (flag == "--help" || flag == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "hds_report: unknown flag " << flag << '\n';
      return false;
    }
  }
  if (o.stack != "fig8" && o.stack != "fig9") {
    std::cerr << "hds_report: --stack must be fig8 or fig9\n";
    return false;
  }
  if (o.n < 3) {
    std::cerr << "hds_report: need --n >= 3\n";
    return false;
  }
  if (o.t == 0) o.t = (o.n - 1) / 2;
  if (o.t >= o.n || (o.stack == "fig8" && 2 * o.t >= o.n)) {
    std::cerr << "hds_report: bad --t for this stack\n";
    return false;
  }
  if (o.ells.empty()) o.ells = {1, (o.n + 1) / 2, o.n};
  for (std::size_t ell : o.ells) {
    if (ell == 0 || ell > o.n) {
      std::cerr << "hds_report: --ell entries must be in [1, n]\n";
      return false;
    }
  }
  if (o.json_path.empty()) o.json_path = o.out_dir + "/qos_report.json";
  if (o.md_path.empty()) o.md_path = o.out_dir + "/qos_report.md";
  return true;
}

// Scalars tracked against the baseline, per sweep point.
using MetricMap = std::map<std::string, double>;

// Metrics where larger is better; everything else regresses upward.
bool higher_is_better(const std::string& name) {
  return name.ends_with("converged") || name.ends_with("quorum_margin_min") ||
         name.ends_with("quora_distinct") || name.ends_with("decided") ||
         name.ends_with("ops_total") || name.ends_with("ops_per_ktick");
}

struct SweepResult {
  std::string key;  // "ell=3"
  std::size_t ell = 0;
  MetricMap metrics;
  Json fig6_qos;
  Json fig7_qos;
  Json stack_qos;
  Json smr;  // replicated-log throughput/latency section
  std::size_t monitor_violations = 0;
  std::size_t monitor_warnings = 0;
  std::map<std::string, std::size_t> monitor_by_rule;
  std::string metrics_json;  // full registry snapshot of this sweep point
  // Causal trace accounting of the consensus-stack run (ring retention vs
  // TraceLog::dropped() evictions). Informational: kept out of the
  // baseline-compared metric map.
  std::size_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
};

SweepResult run_sweep_point(const Options& o, std::size_t ell) {
  SweepResult out;
  out.ell = ell;
  out.key = "ell=" + std::to_string(ell);
  const std::vector<hds::Id> ids =
      ell == o.n ? hds::ids_unique(o.n) : hds::ids_homonymous(o.n, ell, o.seed);
  hds::obs::MetricsRegistry reg;

  // Fig. 6: ◇HP̄ + HΩ under partial synchrony, staggered crashes before GST.
  {
    hds::Fig6Params p;
    p.ids = ids;
    p.crashes = hds::crashes_last_k(o.n, o.t, /*at=*/800, /*stagger=*/50);
    p.net.gst = 1000;
    p.net.delta = o.delta;
    p.net.pre_gst_loss = 0.2;
    p.net.pre_gst_max_delay = 6;
    p.seed = o.seed;
    p.run_for = 4000;
    p.metrics = &reg;
    p.collect_qos = true;
    hds::obs::MonitorConfig mc;
    mc.gt = hds::ground_truth_of(ids, p.crashes);
    mc.watch_from = 3000;  // generous stabilization budget past GST
    mc.metrics = &reg;
    hds::obs::OnlineMonitor monitor(mc);
    p.monitor = &monitor;
    const hds::Fig6Result r = hds::run_fig6(p);
    out.fig6_qos = hds::obs::qos_json(r.qos);
    out.metrics["fig6_detection_max"] = static_cast<double>(r.qos.detection_time_max);
    out.metrics["fig6_detection_mean"] = r.qos.detection_time_mean;
    out.metrics["fig6_undetected"] = static_cast<double>(r.qos.undetected);
    out.metrics["fig6_mistake_intervals"] = static_cast<double>(r.qos.mistake_intervals);
    out.metrics["fig6_mistake_duration_max"] = static_cast<double>(r.qos.mistake_duration_max);
    out.metrics["fig6_leader_flaps"] = static_cast<double>(r.qos.leader_flaps);
    out.metrics["fig6_leader_settle_max"] = static_cast<double>(r.qos.leader_settle_max);
    out.metrics["fig6_converged"] = r.qos.converged ? 1 : 0;
    out.metrics["fig6_stabilization_time"] = static_cast<double>(r.stabilization_time);
    out.monitor_violations += monitor.violation_count();
    out.monitor_warnings += monitor.warning_count();
    for (const auto& [rule, c] : monitor.counts_by_rule()) out.monitor_by_rule[rule] += c;
  }

  // Fig. 7: HΣ in the lock-step synchronous system.
  {
    hds::Fig7Params p;
    p.ids = ids;
    p.crashes = hds::sync_crashes_last_k(o.n, o.t, /*at_step=*/10, /*stagger=*/2);
    p.steps = 30;
    p.seed = o.seed;
    p.metrics = &reg;
    p.collect_qos = true;
    hds::obs::MonitorConfig mc;
    mc.gt = hds::ground_truth_of(ids, p.crashes);
    // Gated rules stay off (the run ends at watch_from); the ungated quorum
    // safety rules still watch every realized quorum.
    mc.watch_from = static_cast<hds::SimTime>(p.steps);
    mc.metrics = &reg;
    hds::obs::OnlineMonitor monitor(mc);
    p.monitor = &monitor;
    const hds::Fig7Result r = hds::run_fig7(p);
    out.fig7_qos = hds::obs::qos_json(r.qos);
    out.metrics["fig7_quorum_margin_min"] = static_cast<double>(r.qos.quorum_margin_min);
    out.metrics["fig7_quora_distinct"] = static_cast<double>(r.qos.quora_distinct);
    out.metrics["fig7_liveness_wait_max"] = static_cast<double>(r.qos.liveness_wait_max);
    out.monitor_violations += monitor.violation_count();
    out.monitor_warnings += monitor.warning_count();
    for (const auto& [rule, c] : monitor.counts_by_rule()) out.monitor_by_rule[rule] += c;
  }

  // Consensus stack.
  {
    hds::ConsensusRunResult r;
    if (o.stack == "fig8") {
      hds::Fig8FullStackParams p;
      p.ids = ids;
      p.t_known = o.t;
      p.crashes = hds::crashes_last_k(o.n, o.t, /*at=*/300, /*stagger=*/30);
      p.net.gst = 500;
      p.net.delta = o.delta;
      p.net.pre_gst_loss = 0.2;
      p.net.pre_gst_max_delay = 6;
      p.seed = o.seed;
      p.metrics = &reg;
      p.collect_qos = true;
      p.trace_capacity = std::size_t{1} << 14;
      p.shards = o.shards;  // no observers on this run, so it takes effect
      r = hds::run_fig8_full_stack(p);
    } else {
      hds::Fig9FullStackParams p;
      p.ids = ids;
      p.crashes = hds::crashes_last_k(o.n, o.t, /*at=*/60, /*stagger=*/10);
      p.delta = o.delta;
      p.seed = o.seed;
      p.metrics = &reg;
      p.collect_qos = true;
      p.trace_capacity = std::size_t{1} << 14;
      p.shards = o.shards;  // as in the fig8 arm
      r = hds::run_fig9_full_stack(p);
    }
    out.stack_qos = hds::obs::qos_json(r.qos);
    out.trace_events = r.trace_events.size();
    out.trace_dropped = r.trace_dropped;
    out.metrics["cons_decided"] = r.all_correct_decided ? 1 : 0;
    out.metrics["cons_last_decision_time"] = static_cast<double>(r.last_decision_time);
    out.metrics["cons_max_round"] = static_cast<double>(r.max_round);
    out.metrics["cons_broadcasts"] = static_cast<double>(r.broadcasts);
    out.metrics["cons_leader_flaps"] = static_cast<double>(r.qos.leader_flaps);
    out.metrics["cons_quorum_margin_min"] = static_cast<double>(r.qos.quorum_margin_min);
  }

  // Replicated log: the closed-loop workload on the HΩ-oracle substrate,
  // crash-free so the scalars price the lease fast path itself. Everything
  // here is a pure function of (n, t, seed, ell) — exactly reproducible,
  // so it folds into the same baseline comparison as the detector QoS.
  {
    hds::smr::SmrSimParams p;
    p.n = o.n;
    p.t = o.t;
    p.ids = ids;
    p.seed = o.seed;
    p.run_for = 4000;
    p.max_time = 16'000;
    p.workload.clients = 16;
    p.metrics = &reg;
    const hds::smr::SmrSimResult r = hds::smr::run_smr_sim(p);
    out.metrics["smr_converged"] = r.converged ? 1 : 0;
    out.metrics["smr_ops_total"] = static_cast<double>(r.ops_total);
    out.metrics["smr_ops_per_ktick"] = r.ops_per_ktick;
    out.metrics["smr_latency_p50"] = r.latency_p50;
    out.metrics["smr_latency_p99"] = r.latency_p99;
    double appends = 0;
    double batches = 0;
    for (const hds::smr::SmrReplicaStats& st : r.replicas) {
      appends += static_cast<double>(st.appends_sent + st.repair_appends_sent);
      batches = std::max(batches, static_cast<double>(st.batches_committed));
    }
    out.metrics["smr_appends_per_batch"] = batches > 0 ? appends / batches : 0;
    Json sm = Json::object();
    sm["converged"] = r.converged;
    sm["prefix_consistent"] = r.prefix_consistent;
    sm["ops_total"] = r.ops_total;
    sm["ops_per_ktick"] = r.ops_per_ktick;
    sm["latency_p50"] = r.latency_p50;
    sm["latency_p99"] = r.latency_p99;
    sm["appends_per_batch"] = out.metrics["smr_appends_per_batch"];
    sm["broadcasts"] = r.broadcasts;
    sm["end_time"] = r.end_time;
    out.smr = std::move(sm);
  }

  out.metrics["monitor_violations"] = static_cast<double>(out.monitor_violations);
  out.metrics["monitor_warnings"] = static_cast<double>(out.monitor_warnings);
  out.metrics_json = reg.to_json();
  return out;
}

struct Regression {
  std::string config;
  std::string metric;
  double baseline = 0;
  double measured = 0;
  std::string kind;  // "worse" | "sign"
};

void compare_against_baseline(const Json& baseline, const Options& o,
                              const std::vector<SweepResult>& sweeps,
                              std::vector<Regression>& regressions,
                              std::vector<std::string>& notes) {
  if (baseline.string_or("schema", "") != kBaselineSchema) {
    notes.push_back("baseline has unexpected schema; comparison skipped");
    return;
  }
  const Json* configs = baseline.find("configs");
  if (configs == nullptr || !configs->is_object()) {
    notes.push_back("baseline has no configs; comparison skipped");
    return;
  }
  for (const SweepResult& s : sweeps) {
    const Json* base_cfg = configs->find(s.key);
    if (base_cfg == nullptr) {
      notes.push_back("baseline has no config " + s.key + "; skipped");
      continue;
    }
    for (const auto& [name, measured] : s.metrics) {
      const Json* bv = base_cfg->find(name);
      if (bv == nullptr || !bv->is_number()) {
        notes.push_back("baseline " + s.key + " lacks metric " + name + "; skipped");
        continue;
      }
      const double b = bv->number();
      // -1 is the "absent / never happened" sentinel on several metrics; a
      // sentinel flip in either direction is a behavioural change, not a
      // magnitude change, so it is always reported.
      if ((b < 0) != (measured < 0)) {
        regressions.push_back(Regression{s.key, name, b, measured, "sign"});
        continue;
      }
      if (b < 0) continue;  // both absent: nothing to compare
      const bool worse = higher_is_better(name)
                             ? measured < b * (1.0 - o.tolerance) - kAbsSlack
                             : measured > b * (1.0 + o.tolerance) + kAbsSlack;
      if (worse) regressions.push_back(Regression{s.key, name, b, measured, "worse"});
    }
  }
}

Json baseline_json(const Options& o, const std::vector<SweepResult>& sweeps) {
  Json out = Json::object();
  out["schema"] = Json(kBaselineSchema);
  out["stack"] = Json(o.stack);
  out["n"] = Json(o.n);
  out["t"] = Json(o.t);
  out["delta"] = Json(o.delta);
  out["seed"] = Json(o.seed);
  Json configs = Json::object();
  for (const SweepResult& s : sweeps) {
    Json m = Json::object();
    for (const auto& [name, v] : s.metrics) m[name] = Json(v);
    configs[s.key] = std::move(m);
  }
  out["configs"] = std::move(configs);
  return out;
}

Json report_json(const Options& o, const std::vector<SweepResult>& sweeps,
                 const std::vector<Regression>& regressions,
                 const std::vector<std::string>& notes, bool baseline_loaded) {
  Json out = Json::object();
  out["schema"] = Json(kReportSchema);
  out["stack"] = Json(o.stack);
  out["n"] = Json(o.n);
  out["t"] = Json(o.t);
  out["delta"] = Json(o.delta);
  out["seed"] = Json(o.seed);
  out["tolerance"] = Json(o.tolerance);
  out["baseline"] = baseline_loaded ? Json(o.baseline) : Json();
  Json cfgs = Json::array();
  for (const SweepResult& s : sweeps) {
    Json c = Json::object();
    c["key"] = Json(s.key);
    c["ell"] = Json(s.ell);
    Json m = Json::object();
    for (const auto& [name, v] : s.metrics) m[name] = Json(v);
    c["metrics"] = std::move(m);
    c["fig6_qos"] = s.fig6_qos;
    c["fig7_qos"] = s.fig7_qos;
    c["stack_qos"] = s.stack_qos;
    c["smr"] = s.smr;
    Json mon = Json::object();
    mon["violations"] = Json(s.monitor_violations);
    mon["warnings"] = Json(s.monitor_warnings);
    Json by_rule = Json::object();
    for (const auto& [rule, c2] : s.monitor_by_rule) by_rule[rule] = Json(c2);
    mon["by_rule"] = std::move(by_rule);
    c["monitor"] = std::move(mon);
    Json tr = Json::object();
    tr["events"] = Json(s.trace_events);
    tr["dropped"] = Json(s.trace_dropped);
    c["trace"] = std::move(tr);
    cfgs.push_back(std::move(c));
  }
  out["configs"] = std::move(cfgs);
  Json regs = Json::array();
  for (const Regression& r : regressions) {
    Json rec = Json::object();
    rec["config"] = Json(r.config);
    rec["metric"] = Json(r.metric);
    rec["baseline"] = Json(r.baseline);
    rec["measured"] = Json(r.measured);
    rec["kind"] = Json(r.kind);
    regs.push_back(std::move(rec));
  }
  out["regressions"] = std::move(regs);
  Json ns = Json::array();
  for (const std::string& n : notes) ns.push_back(Json(n));
  out["notes"] = std::move(ns);
  return out;
}

std::string markdown_report(const Options& o, const std::vector<SweepResult>& sweeps,
                            const std::vector<Regression>& regressions,
                            const std::vector<std::string>& notes, bool baseline_loaded) {
  std::ostringstream md;
  md << "# HDS failure-detector QoS report\n\n";
  md << "- stack: `" << o.stack << "`, n=" << o.n << ", t=" << o.t << ", delta=" << o.delta
     << ", seed=" << o.seed << "\n";
  md << "- baseline: " << (baseline_loaded ? "`" + o.baseline + "`" : "(none)")
     << ", tolerance ±" << static_cast<int>(o.tolerance * 100) << "%\n\n";

  for (const SweepResult& s : sweeps) {
    md << "## " << s.key << " (" << s.ell << " distinct identifier"
       << (s.ell == 1 ? "" : "s") << " over " << o.n << " processes)\n\n";
    md << "| metric | value |\n|---|---|\n";
    for (const auto& [name, v] : s.metrics) {
      md << "| " << name << " | " << v << " |\n";
    }
    md << "\nMonitor: " << s.monitor_violations << " violation(s), " << s.monitor_warnings
       << " warning(s)";
    if (!s.monitor_by_rule.empty()) {
      md << " (";
      bool first = true;
      for (const auto& [rule, c] : s.monitor_by_rule) {
        if (!first) md << ", ";
        first = false;
        md << rule << ": " << c;
      }
      md << ")";
    }
    md << "\n\nTrace: " << s.trace_events << " event(s) retained, " << s.trace_dropped
       << " evicted from the ring\n\n";
    if (s.smr.number_or("ops_total", 0) > 0) {
      md << "Replicated log (closed loop, crash-free fast path): "
         << static_cast<std::int64_t>(s.smr.number_or("ops_total", 0)) << " ops at "
         << s.smr.number_or("ops_per_ktick", 0) << " ops/ktick, commit latency p50 "
         << s.smr.number_or("latency_p50", 0) << " / p99 " << s.smr.number_or("latency_p99", 0)
         << " ticks, " << s.smr.number_or("appends_per_batch", 0) << " append(s) per batch\n\n";
    } else {
      // Zero throughput under homonymy is the documented behaviour, not a
      // broken run: the lease requires a uniquely-carried leader identifier
      // (docs/smr.md), so at this ell no replica ever takes it.
      md << "Replicated log: lease fast path inactive — the HΩ leader "
            "identifier is carried by more than one replica at this degree "
            "of homonymy, so no replica may claim the lease (see "
            "docs/smr.md); 0 ops committed\n\n";
    }
  }

  md << "## Regressions\n\n";
  if (!baseline_loaded) {
    md << "No baseline loaded; nothing compared.\n\n";
  } else if (regressions.empty()) {
    md << "None. All tracked metrics within tolerance of the baseline.\n\n";
  } else {
    md << "| config | metric | baseline | measured | kind |\n|---|---|---|---|---|\n";
    for (const Regression& r : regressions) {
      md << "| " << r.config << " | " << r.metric << " | " << r.baseline << " | " << r.measured
         << " | " << r.kind << " |\n";
    }
    md << "\n";
  }

  if (!notes.empty()) {
    md << "## Notes\n\n";
    for (const std::string& n : notes) md << "- " << n << "\n";
    md << "\n";
  }

  md << "## Paper-claim mapping\n\n"
        "| Paper claim (EXPERIMENTS.md) | QoS metric here |\n|---|---|\n"
        "| Thm. 5: Fig. 6 implements ◇HP̄ in HPS (stabilizes after GST) | "
        "`fig6_stabilization_time`, `fig6_detection_max`, `fig6_mistake_intervals` |\n"
        "| Cor. 2: HΩ from ◇HP̄ (eventual common correct leader) | "
        "`fig6_leader_flaps`, `fig6_leader_settle_max`, `fig6_converged` |\n"
        "| Thm. 6: Fig. 7 implements HΣ in HSS (intersection + liveness) | "
        "`fig7_quorum_margin_min`, `fig7_liveness_wait_max` |\n"
        "| Thms. 7/8: consensus terminates on the full stack | "
        "`cons_decided`, `cons_last_decision_time`, `cons_max_round` |\n"
        "| Message complexity of the stack | `cons_broadcasts` |\n"
        "| Repeated consensus as a service (Sec. V application) | "
        "`smr_ops_total`, `smr_latency_p50`, `smr_latency_p99`, `smr_appends_per_batch` |\n";
  return md.str();
}

bool write_file(const std::string& path, const std::string& content) {
  try {
    hds::obs::write_text_file(path, content);
  } catch (const std::exception& e) {
    std::cerr << "hds_report: " << e.what() << '\n';
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse_args(argc, argv, o)) {
    usage(std::cerr);
    return 1;
  }

  // Each sweep point is a pure function of (options, ell) — its own System,
  // registry, and monitors — so the points fan out across workers and the
  // report is byte-identical for every -j.
  std::cerr << "hds_report: running " << o.ells.size() << ' ' << o.stack
            << " sweep point(s) with " << o.jobs << " worker(s)\n";
  hds::exp::TaskTimings timings;
  const std::vector<SweepResult> sweeps = hds::exp::run_collect(
      o.ells.size(), o.jobs, [&o](std::size_t k) { return run_sweep_point(o, o.ells[k]); },
      &timings);
  if (!timings.task_ms.empty()) {
    std::cerr << "hds_report: sweep wall-clock max " << timings.max_ms() << " ms, mean "
              << timings.mean_ms() << " ms, imbalance " << timings.imbalance() << "x\n";
  }

  if (o.write_baseline) {
    if (!write_file(o.baseline, baseline_json(o, sweeps).dump(2) + "\n")) return 1;
    std::cerr << "hds_report: wrote baseline " << o.baseline << '\n';
  }

  std::vector<Regression> regressions;
  std::vector<std::string> notes;
  bool baseline_loaded = false;
  try {
    const Json baseline = hds::obs::load_json_file(o.baseline);
    baseline_loaded = true;
    if (o.write_baseline) {
      notes.push_back("baseline freshly written; comparison is a self-check");
    }
    compare_against_baseline(baseline, o, sweeps, regressions, notes);
  } catch (const hds::obs::JsonParseError& e) {
    std::cerr << "hds_report: baseline unreadable: " << e.what() << '\n';
    return 1;
  } catch (const std::runtime_error&) {
    notes.push_back("no baseline at " + o.baseline + "; regression check skipped");
  }

  const Json report = report_json(o, sweeps, regressions, notes, baseline_loaded);
  if (!write_file(o.json_path, report.dump(2) + "\n")) return 1;
  if (!write_file(o.md_path, markdown_report(o, sweeps, regressions, notes, baseline_loaded))) {
    return 1;
  }
  for (const SweepResult& s : sweeps) {
    write_file(o.out_dir + "/qos_metrics_" + s.key + ".json", s.metrics_json + "\n");
  }

  std::cerr << "hds_report: wrote " << o.json_path << " and " << o.md_path << '\n';
  if (!regressions.empty()) {
    std::cerr << "hds_report: " << regressions.size() << " regression(s) against " << o.baseline
              << '\n';
    for (const Regression& r : regressions) {
      std::cerr << "  " << r.config << " " << r.metric << ": baseline " << r.baseline
                << " -> measured " << r.measured << " (" << r.kind << ")\n";
    }
    return 2;
  }
  return 0;
}
