// Replicated log: repeated consensus as a service.
//
// Five homonymous replicas agree on a sequence of log entries by running
// one Fig. 8 consensus instance per slot, all slots sharing the node and
// the network (isolated by the instance tag). Two replicas crash mid-way;
// the log stays consistent across the survivors — the standard path from
// single-shot consensus to state-machine replication, here on top of the
// paper's homonymous algorithms.
//
// Build & run:  ./build/examples/replicated_log
#include <cstdio>
#include <memory>

#include "consensus/harness.h"
#include "consensus/majority_homega.h"
#include "fd/oracles.h"
#include "sim/stacked_process.h"

int main() {
  using namespace hds;

  constexpr std::size_t kN = 5;
  constexpr int kSlots = 6;

  SystemConfig cfg;
  cfg.ids = {4, 4, 4, 8, 8};  // three homonyms named 4, two named 8
  cfg.timing = std::make_unique<AsyncTiming>(1, 6);
  cfg.crashes = crashes_last_k(kN, 2, 120, 40);
  cfg.seed = 77;
  System sys(std::move(cfg));
  OracleHOmega fd(GroundTruth::from(sys), [&sys] { return sys.now(); }, 60);

  // Slot s at replica i proposes "command" 10*(s+1) + i.
  std::vector<std::vector<MajorityHOmegaConsensus*>> slots(
      kSlots, std::vector<MajorityHOmegaConsensus*>(kN));
  for (ProcIndex i = 0; i < kN; ++i) {
    auto stack = std::make_unique<StackedProcess>();
    for (int s = 0; s < kSlots; ++s) {
      MajorityConsensusConfig ccfg;
      ccfg.n = kN;
      ccfg.t = 2;
      ccfg.proposal = static_cast<Value>(10 * (s + 1) + static_cast<Value>(i));
      ccfg.instance = s;
      slots[s][i] = stack->add(std::make_unique<MajorityHOmegaConsensus>(ccfg, fd.handle(i)));
    }
    sys.set_process(i, std::move(stack));
  }
  sys.start();
  sys.run_until(50'000);

  const GroundTruth gt = GroundTruth::from(sys);
  std::printf("replicated log across %zu replicas (2 crash mid-run):\n", kN);
  bool all_ok = true;
  for (int s = 0; s < kSlots; ++s) {
    std::vector<Value> proposals;
    std::vector<DecisionRecord> decisions;
    for (ProcIndex i = 0; i < kN; ++i) {
      proposals.push_back(static_cast<Value>(10 * (s + 1) + static_cast<Value>(i)));
      decisions.push_back(slots[s][i]->decision());
    }
    auto res = check_consensus(gt, proposals, decisions);
    Value v = 0;
    SimTime at = 0;
    for (const auto& d : decisions) {
      if (d.decided) {
        v = d.value;
        at = std::max(at, d.at);
      }
    }
    std::printf("  slot %d: entry %lld (checked %s, last decision t=%lld)\n", s,
                static_cast<long long>(v), res.ok ? "ok" : res.detail.c_str(),
                static_cast<long long>(at));
    all_ok = all_ok && res.ok;
  }
  std::printf("log %s\n", all_ok ? "consistent" : "INCONSISTENT");
  return all_ok ? 0 : 1;
}
