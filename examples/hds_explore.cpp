// hds_explore — command-line experiment runner over the whole library.
//
// Pick a stack, a homonymy pattern, a crash schedule and synchrony
// parameters; the tool runs the experiment across seeds and prints one row
// per run plus an aggregate line. All consensus properties are checked on
// every run — a row only counts as ok when Validity+Agreement+Termination
// were machine-verified.
//
//   ./build/examples/hds_explore --stack fig8-oracle --n 7 --distinct 3
//                                 --crashes 3 --stabilize 80 --runs 5
//   ./build/examples/hds_explore --stack fig8-full --n 5 --gst 200 --delta 4
//   ./build/examples/hds_explore --stack fig9-full --n 6 --crashes 4
//   ./build/examples/hds_explore --stack fig9-anon-ap --n 6 --crashes 4
//   ./build/examples/hds_explore --list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "consensus/harness.h"

namespace {

using namespace hds;

struct Cli {
  std::string stack = "fig8-oracle";
  std::size_t n = 6;
  std::size_t distinct = 0;  // 0 = n/2 rounded up
  std::size_t crashes = 0;
  SimTime crash_at = 25;
  SimTime stabilize = 60;
  SimTime gst = 100;
  SimTime delta = 3;
  double loss = 0.0;
  std::uint64_t seed = 1;
  int runs = 3;
  std::optional<std::size_t> alpha;
  std::size_t trace = 0;  // > 0: print the first N event-log lines per run
};

void usage() {
  std::puts(
      "hds_explore --stack <name> [options]\n"
      "  stacks: fig8-oracle   Fig.8 over an HOmega oracle (HAS[t<n/2, HOmega])\n"
      "          fig9-oracle   Fig.9 over HOmega+HSigma oracles (any #crashes)\n"
      "          fig8-full     Fig.6 detector under Fig.8, partial synchrony\n"
      "          fig9-full     Fig.6+Fig.7 detectors under Fig.9, synchrony\n"
      "          fig9-anon-ap  anonymous AP-derived stack under Fig.9\n"
      "          fig9-anon-aomega  AAS[AOmega, HSigma] variant over oracles\n"
      "  options: --n N --distinct L --crashes K --crash-at T --stabilize T\n"
      "           --gst T --delta D --loss P --seed S --runs R --alpha A\n"
      "           --trace N   (full stacks only: print first N event-log lines)");
}

bool parse(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--list" || a == "--help") {
      usage();
      std::exit(0);
    } else if (a == "--stack") {
      cli.stack = next();
    } else if (a == "--n") {
      cli.n = std::strtoul(next(), nullptr, 10);
    } else if (a == "--distinct") {
      cli.distinct = std::strtoul(next(), nullptr, 10);
    } else if (a == "--crashes") {
      cli.crashes = std::strtoul(next(), nullptr, 10);
    } else if (a == "--crash-at") {
      cli.crash_at = std::strtol(next(), nullptr, 10);
    } else if (a == "--stabilize") {
      cli.stabilize = std::strtol(next(), nullptr, 10);
    } else if (a == "--gst") {
      cli.gst = std::strtol(next(), nullptr, 10);
    } else if (a == "--delta") {
      cli.delta = std::strtol(next(), nullptr, 10);
    } else if (a == "--loss") {
      cli.loss = std::strtod(next(), nullptr);
    } else if (a == "--seed") {
      cli.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--runs") {
      cli.runs = std::atoi(next());
    } else if (a == "--alpha") {
      cli.alpha = std::strtoul(next(), nullptr, 10);
    } else if (a == "--trace") {
      cli.trace = std::strtoul(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return false;
    }
  }
  if (cli.n < 2) {
    std::fprintf(stderr, "--n must be >= 2\n");
    return false;
  }
  if (cli.crashes >= cli.n) {
    std::fprintf(stderr, "--crashes must leave a survivor\n");
    return false;
  }
  if (cli.distinct == 0) cli.distinct = (cli.n + 1) / 2;
  return true;
}

ConsensusRunResult dispatch(const Cli& cli, std::uint64_t seed) {
  const auto ids = cli.stack == "fig9-anon-ap" ? ids_anonymous(cli.n)
                                               : ids_homonymous(cli.n, cli.distinct, seed + 5);
  auto crashes =
      cli.crashes > 0 ? crashes_last_k(cli.n, cli.crashes, cli.crash_at, 9) : crashes_none(cli.n);

  if (cli.stack == "fig8-oracle") {
    Fig8OracleParams p;
    p.ids = ids;
    p.t_known = cli.alpha ? 0 : std::max<std::size_t>(cli.crashes, 1);
    if (!cli.alpha && 2 * p.t_known >= cli.n) {
      throw std::runtime_error("fig8 needs crashes < n/2 (or --alpha)");
    }
    p.alpha = cli.alpha;
    p.crashes = crashes;
    p.fd_stabilize = cli.stabilize;
    p.seed = seed;
    return run_fig8_with_oracle(p);
  }
  if (cli.stack == "fig9-oracle") {
    Fig9OracleParams p;
    p.ids = ids;
    p.crashes = crashes;
    p.fd1_stabilize = cli.stabilize;
    p.fd2_stabilize = cli.stabilize + 30;
    p.seed = seed;
    return run_fig9_with_oracle(p);
  }
  if (cli.stack == "fig8-full") {
    Fig8FullStackParams p;
    p.ids = ids;
    p.t_known = std::max<std::size_t>(cli.crashes, 1);
    if (2 * p.t_known >= cli.n) throw std::runtime_error("fig8 needs crashes < n/2");
    p.crashes = crashes;
    p.net = {.gst = cli.gst,
             .delta = cli.delta,
             .pre_gst_loss = cli.loss,
             .pre_gst_max_delay = 40};
    p.seed = seed;
    p.trace_capacity = cli.trace > 0 ? 200'000 : 0;
    return run_fig8_full_stack(p);
  }
  if (cli.stack == "fig9-anon-aomega") {
    Fig9AnonOmegaParams p;
    p.n = cli.n;
    p.crashes = crashes;
    p.aomega_stabilize = cli.stabilize;
    p.fd2_stabilize = cli.stabilize + 30;
    p.seed = seed;
    return run_fig9_anon_aomega(p);
  }
  if (cli.stack == "fig9-full" || cli.stack == "fig9-anon-ap") {
    Fig9FullStackParams p;
    p.ids = ids;
    p.crashes = crashes;
    p.delta = cli.delta;
    p.seed = seed;
    p.anonymous_ap_stack = cli.stack == "fig9-anon-ap";
    p.trace_capacity = cli.trace > 0 ? 200'000 : 0;
    return run_fig9_full_stack(p);
  }
  throw std::runtime_error("unknown stack: " + cli.stack);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse(argc, argv, cli)) {
    usage();
    return 2;
  }
  std::printf("stack=%s n=%zu distinct=%zu crashes=%zu runs=%d\n", cli.stack.c_str(), cli.n,
              cli.distinct, cli.crashes, cli.runs);
  std::printf("%-6s %-4s %-13s %-7s %-10s %-11s\n", "seed", "ok", "decision_t", "rounds",
              "sub_rounds", "broadcasts");
  int ok_runs = 0;
  double sum_t = 0, sum_rounds = 0;
  for (int k = 0; k < cli.runs; ++k) {
    const std::uint64_t seed = cli.seed + static_cast<std::uint64_t>(k);
    ConsensusRunResult r;
    try {
      r = dispatch(cli, seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    const bool ok = r.check.ok;
    std::printf("%-6llu %-4s %-13lld %-7lld %-10lld %-11llu%s%s\n",
                static_cast<unsigned long long>(seed), ok ? "yes" : "NO",
                static_cast<long long>(r.last_decision_time),
                static_cast<long long>(r.max_round), static_cast<long long>(r.max_sub_round),
                static_cast<unsigned long long>(r.broadcasts), ok ? "" : "  <- ",
                ok ? "" : r.check.detail.c_str());
    if (ok) {
      ++ok_runs;
      sum_t += static_cast<double>(r.last_decision_time);
      sum_rounds += static_cast<double>(r.max_round);
    }
    if (cli.trace > 0 && !r.trace_head.empty()) {
      std::printf("--- event log (seed %llu) ---\n", static_cast<unsigned long long>(seed));
      std::size_t lines = 0;
      for (const char* c = r.trace_head.c_str(); *c && lines < cli.trace; ++c) {
        std::putchar(*c);
        if (*c == '\n') ++lines;
      }
      std::printf("--- end event log ---\n");
    }
  }
  if (ok_runs > 0) {
    std::printf("aggregate: %d/%d ok, mean decision_t=%.1f, mean rounds=%.1f\n", ok_runs,
                cli.runs, sum_t / ok_runs, sum_rounds / ok_runs);
  } else {
    std::printf("aggregate: 0/%d ok\n", cli.runs);
  }
  return ok_runs == cli.runs ? 0 : 1;
}
