// Domain-privacy scenario (the paper cites Byzantine agreement with
// homonyms [14]): users keep their privacy by using their *domain* as
// their identifier, so every user of a domain is a homonym of the others.
// Here three domains host 2-3 replicas each, and the replicas must agree
// on a configuration epoch although most of them can crash: the Fig. 9
// algorithm with HΩ + HΣ needs no majority, no n, no t, no membership.
// Both detectors are implemented (Fig. 6 polling and the Fig. 7 adapter)
// on a synchronous network — the model where HΣ is implementable.
//
// Build & run:  ./build/examples/domain_privacy
#include <cstdio>

#include "consensus/harness.h"

int main() {
  using namespace hds;

  // Identifier = hash of the domain name (three domains).
  constexpr Id kAlpha = 101, kBeta = 202, kGamma = 303;
  Fig9FullStackParams params;
  params.ids = {kAlpha, kAlpha, kAlpha, kBeta, kBeta, kGamma, kGamma};
  const std::size_t n = params.ids.size();
  // 4 of 7 replicas crash — more than any majority scheme tolerates.
  params.crashes = crashes_last_k(n, 4, /*at=*/45, /*stagger=*/12);
  params.proposals = {3, 3, 4, 5, 4, 3, 5};  // proposed config epochs
  params.delta = 3;                           // known synchronous bound
  params.seed = 11;

  std::printf("7 replicas across 3 domains (ids %llu,%llu,%llu), 4 will crash\n",
              static_cast<unsigned long long>(kAlpha), static_cast<unsigned long long>(kBeta),
              static_cast<unsigned long long>(kGamma));
  std::printf("running Fig.6 (HΩ) + Fig.7-adapter (HΣ) + Fig.9 consensus...\n");

  const ConsensusRunResult result = run_fig9_full_stack(params);
  if (!result.check.ok) {
    std::printf("FAILED: %s\n", result.check.detail.c_str());
    return 1;
  }
  Value epoch = 0;
  for (const auto& d : result.decisions) {
    if (d.decided) epoch = d.value;
  }
  std::printf("agreed on epoch %lld (by t=%lld, %lld rounds, max sub-round %lld)\n",
              static_cast<long long>(epoch), static_cast<long long>(result.last_decision_time),
              static_cast<long long>(result.max_round),
              static_cast<long long>(result.max_sub_round));

  // The same algorithm in the fully anonymous extreme, driven by AP-derived
  // detectors (Lemmas 2-3 + Observation 1): the paper's anonymous corollary.
  Fig9FullStackParams anon;
  anon.ids = ids_anonymous(5);
  anon.crashes = crashes_last_k(5, 3, 30, 9);
  anon.delta = 2;
  anon.seed = 12;
  anon.anonymous_ap_stack = true;
  std::printf("\nanonymous corollary: 5 identity-less processes, 3 crash, AP-derived stack...\n");
  const ConsensusRunResult anon_result = run_fig9_full_stack(anon);
  if (!anon_result.check.ok) {
    std::printf("FAILED: %s\n", anon_result.check.detail.c_str());
    return 1;
  }
  Value v = 0;
  for (const auto& d : anon_result.decisions) {
    if (d.decided) v = d.value;
  }
  std::printf("anonymous processes agreed on %lld (by t=%lld)\n", static_cast<long long>(v),
              static_cast<long long>(anon_result.last_decision_time));
  return 0;
}
