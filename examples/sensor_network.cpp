// Sensor network scenario (the paper's motivating example): a field of
// motes whose identifiers are drawn independently at random from a small
// space, so collisions — homonyms — are expected. No mote knows the
// membership, n, or t. The full partially-synchronous stack runs: the
// Fig. 6 polling detector builds ◇HP̄/HΩ while the Fig. 8 consensus layer
// (here: agreeing on a common radio sleep schedule) runs on top of it.
//
// Build & run:  ./build/examples/sensor_network [n] [seed]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/rng.h"
#include "consensus/harness.h"

int main(int argc, char** argv) {
  using namespace hds;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 9;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // Motes pick ids uniformly from {1..n/2}: collisions are likely (the
  // birthday bound), which is exactly the regime the paper targets.
  Rng rng(seed);
  std::vector<Id> ids(n);
  for (auto& id : ids) id = static_cast<Id>(rng.uniform(1, static_cast<Value>(n / 2 + 1)));
  std::map<Id, int> census;
  for (Id id : ids) ++census[id];

  std::printf("deploying %zu motes, identifier census:", n);
  for (auto [id, c] : census) std::printf(" id%llu x%d", static_cast<unsigned long long>(id), c);
  std::printf("\n");

  Fig8FullStackParams params;
  params.ids = ids;
  params.t_known = (n - 1) / 2;  // tolerate any minority of battery deaths
  params.crashes = crashes_last_k(n, n / 3, /*at=*/80, /*stagger=*/23);  // batteries die
  params.proposals.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    params.proposals[i] = 100 + static_cast<Value>(rng.uniform(0, 8)) * 25;  // sleep ms
  }
  // Radio interference until GST; stable and timely afterwards.
  params.net = {.gst = 150, .delta = 4, .pre_gst_loss = 0.0, .pre_gst_max_delay = 60};
  params.seed = seed;

  std::printf("running Fig.6 (polling ◇HP̄ -> HΩ) + Fig.8 consensus under partial synchrony...\n");
  const ConsensusRunResult result = run_fig8_full_stack(params);

  if (!result.check.ok) {
    std::printf("FAILED: %s\n", result.check.detail.c_str());
    return 1;
  }
  Value agreed = 0;
  for (const auto& d : result.decisions) {
    if (d.decided) agreed = d.value;
  }
  std::printf("field agreed on sleep schedule %lld ms (decision by t=%lld, %lld rounds, "
              "%llu broadcasts)\n",
              static_cast<long long>(agreed), static_cast<long long>(result.last_decision_time),
              static_cast<long long>(result.max_round),
              static_cast<unsigned long long>(result.broadcasts));
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (result.decisions[i].decided) ++survivors;
  }
  std::printf("%zu motes decided (crashed motes may or may not have)\n", survivors);
  return 0;
}
