// A guided tour of the paper's Figure 5: every implemented reduction arrow
// run end-to-end, printing the detector outputs before and after each
// transformation. Useful as a reading companion to Section 3.
//
// Build & run:  ./build/examples/reductions_tour
#include <cstdio>
#include <sstream>

#include "hds.h"

namespace {

using namespace hds;

std::string show(const HSigmaSnapshot& s) {
  std::ostringstream os;
  os << s.labels.size() << " labels, quora{";
  bool first = true;
  for (const auto& [x, m] : s.quora) {
    if (!first) os << ", ";
    os << x << "->" << m;
    first = false;
  }
  os << '}';
  return os.str();
}

}  // namespace

int main() {
  using namespace hds;

  // A fixed ground truth for all oracles: five processes, ids {1,1,2,3,4},
  // the two processes named 1 and the one named 3 are correct.
  GroundTruth gt;
  gt.ids = {1, 1, 2, 3, 4};
  gt.correct = {true, true, false, true, false};
  SimTime now = 1000;  // all oracles already stabilized
  ClockFn clock = [&now] { return now; };

  std::printf("Pi = %s, Correct = %s\n\n", gt.all_ids().to_string().c_str(),
              gt.correct_ids().to_string().c_str());

  std::printf("Observation 1: <>HPbar -> HOmega (no communication)\n");
  OracleOHP ohp(gt, clock, 0);
  OhpToHOmega obs1(ohp.handle(0), gt.ids[0]);
  std::printf("  h_trusted = %s  =>  (leader %llu, multiplicity %zu)\n\n",
              ohp.handle(0).h_trusted().to_string().c_str(),
              static_cast<unsigned long long>(obs1.h_omega().leader),
              obs1.h_omega().multiplicity);

  std::printf("Lemma 2: AP -> <>HPbar (anonymous, no communication)\n");
  GroundTruth anon;
  anon.ids = ids_anonymous(5);
  anon.correct = gt.correct;
  OracleAP ap(anon, clock, 0);
  ApToOhp lemma2(ap.handle(0));
  std::printf("  anap = %zu  =>  h_trusted = %s\n\n", ap.handle(0).anap(),
              lemma2.h_trusted().to_string().c_str());

  std::printf("Lemma 3: AP -> HSigma (anonymous, no communication)\n");
  ApToHSigma lemma3(ap.handle(0));
  std::printf("  anap = %zu  =>  %s\n\n", ap.handle(0).anap(), show(lemma3.snapshot()).c_str());

  std::printf("Theorem 3: ASigma -> HSigma (anonymous, no communication)\n");
  OracleASigma asig(anon, clock, 0);
  ASigmaToHSigma thm3(asig.handle(0));
  std::printf("  |a_sigma| = %zu pairs  =>  %s\n\n", asig.handle(0).a_sigma().size(),
              show(thm3.snapshot()).c_str());

  std::printf("Theorem 1 (Fig. 1): Sigma -> HSigma with membership, unique ids\n");
  GroundTruth uniq;
  uniq.ids = ids_unique(4);
  uniq.correct = {true, true, true, false};
  OracleSigma sigma(uniq, clock, 0);
  SystemConfig cfg;
  cfg.ids = uniq.ids;
  cfg.timing = std::make_unique<AsyncTiming>(1, 3);
  cfg.crashes = {std::nullopt, std::nullopt, std::nullopt, CrashPlan{10}};
  System sys(std::move(cfg));
  std::set<Id> membership(uniq.ids.begin(), uniq.ids.end());
  std::vector<SigmaToHSigmaLocal*> fig1(4);
  for (ProcIndex i = 0; i < 4; ++i) {
    auto red = std::make_unique<SigmaToHSigmaLocal>(sigma.handle(i), uniq.ids[i], membership);
    fig1[i] = red.get();
    sys.set_process(i, std::move(red));
  }
  sys.start();
  sys.run_until(100);
  std::printf("  trusted = %s  =>  %s\n\n", sigma.handle(0).trusted().to_string().c_str(),
              show(fig1[0]->snapshot()).c_str());

  std::printf("Unique-id corner: HOmega <-> Omega, <>HPbar <-> <>Pbar\n");
  OracleHOmega homega(uniq, clock, 0);
  HOmegaToOmega down(homega.handle(0));
  OmegaToHOmega up(down);
  OracleOHP ohp_u(uniq, clock, 0);
  OhpToOPbar set_down(ohp_u.handle(0));
  std::printf("  HOmega (leader %llu, x%zu) -> Omega leader %llu -> HOmega (leader %llu, x%zu)\n",
              static_cast<unsigned long long>(homega.handle(0).h_omega().leader),
              homega.handle(0).h_omega().multiplicity,
              static_cast<unsigned long long>(down.leader()),
              static_cast<unsigned long long>(up.h_omega().leader), up.h_omega().multiplicity);
  std::printf("  <>HPbar %s -> <>Pbar set of %zu ids\n",
              ohp_u.handle(0).h_trusted().to_string().c_str(), set_down.trusted_set().size());

  std::printf("\nThe communication-bearing arrows (Fig. 2, Fig. 4) are exercised with\n"
              "full property checks in tests/reductions_test.cpp and benchmarked in\n"
              "bench_fig12_sigma_to_hsigma / bench_fig4_hsigma_to_sigma.\n");
  return 0;
}
