// Thread-runtime demo: the identical algorithm objects that run on the
// discrete-event simulator run here across real OS threads with wall-clock
// timers and jittery mailbox delivery — Fig. 6 (polling ◇HP̄ -> HΩ) under
// Fig. 8 consensus, with one node killed mid-run.
//
// Build & run:  ./build/examples/threads_demo
#include <chrono>
#include <cstdio>
#include <thread>

#include "consensus/majority_homega.h"
#include "fd/impl/ohp_polling.h"
#include "rt/runtime.h"
#include "sim/stacked_process.h"

int main() {
  using namespace hds;
  using namespace std::chrono_literals;

  constexpr std::size_t kN = 5;
  RtConfig cfg;
  cfg.ids = {7, 7, 8, 9, 9};  // two homonymous pairs
  cfg.max_delay_ms = 3;
  cfg.seed = 99;
  RtSystem sys(std::move(cfg));

  std::vector<MajorityHOmegaConsensus*> cons(kN);
  for (ProcIndex i = 0; i < kN; ++i) {
    auto stack = std::make_unique<StackedProcess>();
    auto* fd = stack->add(std::make_unique<OHPPolling>());
    MajorityConsensusConfig ccfg;
    ccfg.n = kN;
    ccfg.t = 2;
    ccfg.proposal = static_cast<Value>(1000 + i);
    ccfg.guard_poll = 5;
    cons[i] = stack->add(std::make_unique<MajorityHOmegaConsensus>(ccfg, *fd));
    sys.set_process(i, std::move(stack));
  }

  std::printf("starting %zu node threads (ids 7,7,8,9,9)...\n", kN);
  sys.start();
  std::this_thread::sleep_for(40ms);
  std::printf("killing node 4 mid-run\n");
  sys.crash(4);

  auto all_decided = [&] {
    for (ProcIndex i = 0; i < 4; ++i) {
      if (!sys.query(i, [&](Process&) { return cons[i]->decision().decided; })) return false;
    }
    return true;
  };
  if (!sys.wait_for(all_decided, 30000ms, 25ms)) {
    std::printf("TIMEOUT: consensus did not complete\n");
    return 1;
  }
  for (ProcIndex i = 0; i < 4; ++i) {
    auto d = sys.query(i, [&](Process&) { return cons[i]->decision(); });
    std::printf("  node %zu decided %lld (round %lld, local time %lld ms)\n", i,
                static_cast<long long>(d.value), static_cast<long long>(d.round),
                static_cast<long long>(d.at));
  }
  sys.stop();
  std::printf("threads joined cleanly\n");
  return 0;
}
