// Quickstart: consensus among five homonymous processes.
//
// Three processes share identifier 1 and two share identifier 2; one
// process of each identifier crashes mid-run. The HΩ failure detector is
// provided as an oracle (the HAS[t < n/2, HΩ] model of the paper's
// Section 5.2) that behaves adversarially for the first 60 time units.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "consensus/harness.h"

int main() {
  using namespace hds;

  Fig8OracleParams params;
  params.ids = {1, 1, 1, 2, 2};                 // homonymous membership (unknown to processes)
  params.t_known = 2;                           // the algorithm's majority parameter: t < n/2
  params.crashes = crashes_none(5);
  params.crashes[2] = CrashPlan{.at = 40};      // one "1" crashes
  params.crashes[4] = CrashPlan{.at = 55};      // one "2" crashes
  params.proposals = {10, 20, 30, 40, 50};
  params.fd_stabilize = 60;                     // HΩ garbage before this time
  params.seed = 2026;

  const ConsensusRunResult result = run_fig8_with_oracle(params);

  std::printf("consensus %s (%s)\n", result.check.ok ? "OK" : "FAILED",
              result.check.ok ? "validity+agreement+termination verified" :
                                result.check.detail.c_str());
  for (std::size_t i = 0; i < result.decisions.size(); ++i) {
    const DecisionRecord& d = result.decisions[i];
    if (d.decided) {
      std::printf("  process %zu (id %llu): decided %lld in round %lld at time %lld\n", i,
                  static_cast<unsigned long long>(params.ids[i]),
                  static_cast<long long>(d.value), static_cast<long long>(d.round),
                  static_cast<long long>(d.at));
    } else {
      std::printf("  process %zu (id %llu): crashed before deciding\n", i,
                  static_cast<unsigned long long>(params.ids[i]));
    }
  }
  std::printf("network: %llu broadcasts, %llu copies delivered\n",
              static_cast<unsigned long long>(result.broadcasts),
              static_cast<unsigned long long>(result.copies_delivered));
  return result.check.ok ? 0 : 1;
}
